"""The switch-equivalence property: adaptive ≡ fixed, switches included.

The adaptive evaluator's safety claim is that a mechanism switch is
*observationally invisible*: answers, batch order, and engine firing
sequences match a fixed-mechanism run no matter when switches happen.
Hypothesis forces switches at arbitrary points of random streams (the
strongest adversary — the governor can only switch at a subset of these
points), then repeats the exercise with an aggressively-switching
governor through the full node path across shards × executors × mid-run
installs.  Unit tests pin the nasty migration states by hand: a
half-built ``ESeq`` prefix, a pending trailing-``ENot`` deadline, a
same-instant window expiry racing the switch, and consumption marks.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.events import (
    AdaptiveEvaluator,
    ConsumingEvaluator,
    EAtom,
    ENot,
    ESeq,
    EWithin,
    GovernorConfig,
    IncrementalEvaluator,
    adaptive,
)
from repro.events.model import make_event
from repro.terms import d, q

from test_event_equivalence import _run_engine, event_queries, streams
from test_shard_equivalence import (
    RULE_SPECS,
    STREAMS,
    _run_fleet,
    _run_fleet_with_mid_run_install,
)

# Forced-switch tests disable the governor (absurd epoch/period) so the
# *test* chooses the switch points; the fleet tests do the opposite.
MANUAL = dict(epoch_events=10**9, period=1e9)
# An aggressively-switching governor: decides every event, no dwell, no
# margin, fast decay — the worst case for migration, the opposite of the
# production defaults.
EAGER = dict(epoch_events=1, dwell_epochs=0, margin=0.0, halflife=1.0,
             period=1.0)


def _flip(evaluator):
    """Switch to whichever mechanism is not currently running."""
    target = "tree" if evaluator.mechanism == "incremental" else "incremental"
    return evaluator.switch_to(target)


@given(event_queries(), streams(),
       st.lists(st.integers(min_value=0, max_value=13), max_size=4),
       st.booleans())
@settings(max_examples=200, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_forced_switches_preserve_batches(query, stream, cuts, start_tree):
    """Switches forced at arbitrary points must not change a single batch
    — not the answers, not their order, not which step emits them."""
    config = GovernorConfig(initial="tree" if start_tree else "incremental",
                            **MANUAL)
    switchy = AdaptiveEvaluator(query, config=config)
    baseline = IncrementalEvaluator(query)
    clock = 0.0
    for step, (delta, label, value) in enumerate(stream):
        clock += delta
        event = make_event(d(label, value), clock)
        got = switchy.on_event(event)
        want = baseline.on_event(event)
        assert got == want, (
            f"divergence at t={clock} on {label} "
            f"(mechanism={switchy.mechanism}, switches={switchy.switches}): "
            f"adaptive={list(map(str, got))} fixed={list(map(str, want))}"
        )
        if step in cuts:
            _flip(switchy)  # False (refused) on pinned queries is fine too
    for horizon in (clock + 5.0, clock + 50.0):
        assert switchy.advance_time(horizon) == baseline.advance_time(horizon)
        _flip(switchy)


@given(event_queries(), streams())
@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_switch_after_every_event_preserves_batches(query, stream):
    """The densest possible switch schedule: flip after *every* event and
    every advance.  Subsumes any governor behaviour."""
    switchy = AdaptiveEvaluator(query, config=GovernorConfig(**MANUAL))
    baseline = IncrementalEvaluator(query)
    clock = 0.0
    for delta, label, value in stream:
        clock += delta
        event = make_event(d(label, value), clock)
        assert switchy.on_event(event) == baseline.on_event(event)
        _flip(switchy)
    for horizon in (clock + 5.0, clock + 50.0):
        assert switchy.advance_time(horizon) == baseline.advance_time(horizon)
        _flip(switchy)


@given(event_queries(), streams())
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_adaptive_engine_firing_sequence_matches_fixed(query, stream):
    """Full production path, governor switching as eagerly as it likes:
    the firing sequence must match the fixed-mechanism engine."""
    baseline, baseline_firings = _run_engine(query, stream)
    got, got_firings = _run_engine(query, stream, evaluator=adaptive(**EAGER))
    assert got_firings == baseline_firings
    assert got == baseline


@given(RULE_SPECS, STREAMS, st.sampled_from([1, 2, 4]),
       st.sampled_from(["inline", "threads"]))
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_adaptive_fleet_equals_incremental_fleet(specs, stream, n_shards,
                                                 executor):
    """The acceptance matrix: shards ∈ {1, 2, 4} × executor ∈ {inline,
    threads}, an eagerly-switching adaptive fleet vs the incremental
    baseline, full node path."""
    baseline, baseline_firings = _run_fleet(specs, stream)
    kwargs = {"evaluator": adaptive(**EAGER)}
    if n_shards > 1:
        kwargs.update(shards=n_shards, executor=executor)
    got, got_firings = _run_fleet(specs, stream, **kwargs)
    assert got_firings == baseline_firings
    assert got == baseline


@given(RULE_SPECS, STREAMS, st.sampled_from([1, 4]),
       st.integers(min_value=0, max_value=4))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_adaptive_mid_run_install_preserves_equivalence(
        specs, stream, n_shards, extra_rules):
    """Mid-run installs re-partition shards and replan survivors while
    governors are mid-dwell; equivalence must survive."""
    if not stream:
        return
    run = _run_fleet_with_mid_run_install
    kwargs = {"evaluator": adaptive(**EAGER)}
    if n_shards > 1:
        kwargs["shards"] = n_shards
    assert run(specs, stream, extra_rules, **kwargs) == \
        run(specs, stream, extra_rules)


@given(RULE_SPECS, STREAMS, st.sampled_from(["chronicle", "recent"]))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_adaptive_consumption_equals_fixed_consumption(specs, stream, policy):
    """Consumption policies layer outside the adaptive evaluator, so
    consumed-event marks must be switch-invariant too."""
    baseline = _run_fleet(specs, stream, consumption=policy)
    got = _run_fleet(specs, stream, consumption=policy,
                     evaluator=adaptive(**EAGER))
    assert got == baseline


# ---------------------------------------------------------------------------
# The nasty migration states, pinned by hand
# ---------------------------------------------------------------------------


def _pair(query, initial="incremental"):
    switchy = AdaptiveEvaluator(query, config=GovernorConfig(initial=initial,
                                                             **MANUAL))
    fixed = IncrementalEvaluator(query)
    return switchy, fixed


def _step(switchy, fixed, term, time):
    event = make_event(term, time)
    got, want = switchy.on_event(event), fixed.on_event(event)
    assert got == want
    return got


def test_half_built_seq_prefix_survives_switch():
    """a then b buffered, switch, then c completes the compound event."""
    query = EWithin(ESeq(EAtom(q("a")), EAtom(q("b")), EAtom(q("c"))), 10.0)
    switchy, fixed = _pair(query)
    _step(switchy, fixed, d("a"), 1.0)
    _step(switchy, fixed, d("b"), 2.0)
    assert switchy.state_size() > 0
    assert switchy.switch_to("tree")
    answers = _step(switchy, fixed, d("c"), 3.0)
    assert len(answers) == 1
    assert answers[0].start == 1.0 and answers[0].end == 3.0
    assert switchy.advance_time(20.0) == fixed.advance_time(20.0)


def test_pending_absence_deadline_survives_switch():
    """A trailing-ENot pending crosses the switch: its absence answer must
    fire exactly once, at the same deadline, on the new mechanism."""
    query = EWithin(ESeq(EAtom(q("a")), EAtom(q("b")), ENot(q("n"))), 4.0)
    switchy, fixed = _pair(query)
    _step(switchy, fixed, d("a"), 1.0)
    _step(switchy, fixed, d("b"), 2.0)  # pending: absence confirms at 5.0
    assert switchy.switch_to("tree")
    assert switchy.next_deadline() == fixed.next_deadline() == 5.0
    got, want = switchy.advance_time(5.0), fixed.advance_time(5.0)
    assert got == want and len(got) == 1
    # And nothing fires twice later.
    assert switchy.advance_time(50.0) == fixed.advance_time(50.0) == []


def test_blocker_after_switch_still_blocks_pending():
    """The pending migrated; a blocker arriving after the switch must
    still cancel it."""
    query = EWithin(ESeq(EAtom(q("a")), EAtom(q("b")), ENot(q("n"))), 4.0)
    switchy, fixed = _pair(query)
    _step(switchy, fixed, d("a"), 1.0)
    _step(switchy, fixed, d("b"), 2.0)
    assert switchy.switch_to("tree")
    _step(switchy, fixed, d("n"), 3.0)  # blocks the pending
    assert switchy.advance_time(50.0) == fixed.advance_time(50.0) == []


def test_same_instant_expiry_racing_a_switch():
    """A window expiring at exactly the switch instant: the absence answer
    fired by the triggering call must not be lost or duplicated."""
    query = EWithin(ESeq(EAtom(q("a")), EAtom(q("b")), ENot(q("n"))), 4.0)
    switchy, fixed = _pair(query)
    _step(switchy, fixed, d("a"), 1.0)
    _step(switchy, fixed, d("b"), 2.0)
    # An unrelated event lands at exactly the 5.0 deadline: both
    # mechanisms fire the absence answer inside this on_event call.
    answers = _step(switchy, fixed, d("x"), 5.0)
    assert len(answers) == 1
    assert switchy.switch_to("tree")  # replay must not re-fire it
    assert switchy.advance_time(5.0) == fixed.advance_time(5.0) == []
    assert switchy.advance_time(50.0) == fixed.advance_time(50.0) == []
    # Symmetric race: the switch happens first at the deadline instant.
    switchy2, fixed2 = _pair(query)
    _step(switchy2, fixed2, d("a"), 1.0)
    _step(switchy2, fixed2, d("b"), 2.0)
    assert switchy2.advance_time(5.0) == fixed2.advance_time(5.0)
    assert switchy2.switch_to("tree")
    assert switchy2.advance_time(5.0) == fixed2.advance_time(5.0) == []


def test_consumption_marks_survive_switch():
    """Chronicle consumption: events consumed before the switch must stay
    consumed after it (the policy wraps outside the migrating state)."""
    query = EWithin(ESeq(EAtom(q("a")), EAtom(q("b"))), 10.0)
    switchy = ConsumingEvaluator(
        AdaptiveEvaluator(query, config=GovernorConfig(**MANUAL)), "chronicle")
    fixed = ConsumingEvaluator(IncrementalEvaluator(query), "chronicle")
    _step(switchy, fixed, d("a"), 1.0)
    _step(switchy, fixed, d("a"), 2.0)
    # b completes two candidate answers; chronicle accepts the older one
    # and consumes a@1 and b@3.
    got = _step(switchy, fixed, d("b"), 3.0)
    assert len(got) == 1 and got[0].start == 1.0
    assert switchy.switch_to("tree")
    # After the switch a fresh b may only pair with the unconsumed a@2.
    got = _step(switchy, fixed, d("b"), 4.0)
    assert len(got) == 1 and got[0].start == 2.0
    got = _step(switchy, fixed, d("b"), 5.0)
    assert got == []
    assert switchy.advance_time(50.0) == fixed.advance_time(50.0)

"""Property-based round-trip tests for the surface rule language.

hypothesis generates random (valid) rules over the full AST — event
algebra, conditions, actions — and requires
``parse_rule(rule_to_text(rule)) == rule`` and the meta-encoding
equivalent ``term_to_rule(rule_to_term(rule)) == rule``.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.core import actions as act
from repro.core import conditions as cond
from repro.core.meta import rule_to_term, term_to_rule
from repro.core.rules import ECARule
from repro.events.queries import (
    EAggregate,
    EAnd,
    EAtom,
    ECount,
    ENot,
    EOr,
    ESeq,
    EWithin,
)
from repro.lang import parse_rule, rule_to_text
from repro.terms import CTerm, QTerm, Var
from repro.terms.parser import to_text

LABELS = st.text(alphabet=string.ascii_lowercase, min_size=2, max_size=6)
VARS = st.sampled_from(["X", "Y", "Z", "W"])
URIS = st.sampled_from(["http://a.example/d", "http://b.example/log"])
WINDOWS = st.sampled_from([1.0, 5.0, 60.0])


def patterns():
    leaf = st.one_of(
        LABELS.map(lambda l: QTerm(l, (), False, False)),
        st.tuples(LABELS, VARS).map(
            lambda t: QTerm(t[0], (Var(t[1]),), False, False)),
    )
    return st.one_of(
        leaf,
        st.tuples(LABELS, st.lists(leaf, min_size=1, max_size=2)).map(
            lambda t: QTerm(t[0], tuple(t[1]), False, False)),
    )


def atoms():
    return st.one_of(
        patterns().map(EAtom),
        st.tuples(patterns(), VARS).map(lambda t: EAtom(t[0], alias=t[1])),
    )


def event_queries():
    simple = atoms()
    members = st.lists(simple, min_size=2, max_size=3)
    composite = st.one_of(
        members.map(lambda ms: EAnd(*ms)),
        members.map(lambda ms: EOr(*ms)),
        members.map(lambda ms: ESeq(*ms)),
        st.tuples(simple, WINDOWS).map(lambda t: EWithin(t[0], t[1])),
        st.tuples(members, patterns(), WINDOWS).map(
            lambda t: EWithin(ESeq(t[0][0], ENot(t[1]), *t[0][1:]), t[2])),
        st.tuples(patterns(), st.integers(2, 5), WINDOWS).map(
            lambda t: ECount(t[0], t[1], t[2])),
        st.tuples(patterns(), VARS, st.sampled_from(["avg", "sum", "max"]),
                  st.integers(2, 6)).map(
            lambda t: EAggregate(t[0], t[1], t[2], "OUT", size=t[3])),
    )
    return st.one_of(simple, composite,
                     st.tuples(composite, WINDOWS).map(lambda t: EWithin(t[0], t[1])))


def constructs():
    """Structured construct terms (CTerm roots, as actions require)."""
    leaf = st.one_of(
        VARS.map(Var),
        st.integers(-100, 100),
        LABELS.map(lambda l: CTerm(l, ())),
    )
    return st.one_of(
        LABELS.map(lambda l: CTerm(l, ())),
        st.tuples(LABELS, st.lists(leaf, min_size=1, max_size=3)).map(
            lambda t: CTerm(t[0], tuple(t[1]), False)),
    )


def conditions():
    query_cond = st.tuples(URIS, patterns()).map(lambda t: cond.QueryCond(*t))
    compare = st.tuples(VARS.map(Var), st.sampled_from(["<", ">=", "=="]),
                        st.integers(-10, 10)).map(
        lambda t: cond.CompareCond(t[0], t[1], t[2]))
    simple = st.one_of(st.just(cond.TrueCond()), query_cond, compare)
    return st.one_of(
        simple,
        st.lists(simple, min_size=2, max_size=3).map(lambda ms: cond.AndCond(*ms)),
        st.lists(simple, min_size=2, max_size=2).map(lambda ms: cond.OrCond(*ms)),
        simple.map(cond.NotCond),
    )


def actions():
    raise_ = st.tuples(URIS, constructs()).map(lambda t: act.Raise(*t))
    persist = st.tuples(URIS, constructs()).map(lambda t: act.Persist(t[0], t[1]))
    put = st.tuples(URIS, constructs()).map(lambda t: act.PutResource(*t))
    update = st.tuples(URIS, patterns(), constructs()).map(
        lambda t: act.Update(t[0], "replace", t[1], t[2]))
    delete = st.tuples(URIS, patterns()).map(
        lambda t: act.Update(t[0], "delete", t[1]))
    simple = st.one_of(raise_, persist, put, update, delete)
    return st.one_of(
        simple,
        st.lists(simple, min_size=2, max_size=3).map(lambda ss: act.Sequence(*ss)),
        st.lists(simple, min_size=2, max_size=2).map(lambda ss: act.Alternative(*ss)),
        st.tuples(conditions(), simple, simple).map(
            lambda t: act.Conditional(t[0], t[1], t[2])),
    )


def rules():
    return st.tuples(
        st.text(alphabet=string.ascii_lowercase, min_size=3, max_size=8),
        event_queries(),
        st.lists(st.tuples(conditions(), actions()), min_size=1, max_size=2),
        st.one_of(st.none(), actions()),
        st.sampled_from(["all", "first"]),
    ).map(lambda t: ECARule(t[0], t[1], tuple(t[2]), t[3], t[4]))


@given(rules())
@settings(max_examples=250, deadline=None)
def test_surface_language_round_trip(rule):
    assert parse_rule(rule_to_text(rule)) == rule


@given(rules())
@settings(max_examples=250, deadline=None)
def test_meta_encoding_round_trip(rule):
    assert term_to_rule(rule_to_term(rule)) == rule


@given(rules())
@settings(max_examples=100, deadline=None)
def test_encodings_compose(rule):
    # text -> rule -> term -> rule -> text is stable.
    term = rule_to_term(parse_rule(rule_to_text(rule)))
    assert rule_to_text(term_to_rule(term)) == rule_to_text(rule)

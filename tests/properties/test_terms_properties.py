"""Property-based tests (hypothesis) for the term layer.

Invariants exercised here are the ones the rest of the system leans on:
round-trip parsing, canonical equality, self-matching, permutation
invariance of unordered terms, and bindings algebra.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.terms import (
    Bindings,
    CTerm,
    Data,
    QTerm,
    Var,
    canonical_str,
    d,
    instantiate,
    match,
    matches,
    parse_data,
    to_text,
    values_equal,
)

LABELS = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)

SCALARS = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000),
    st.booleans(),
    st.text(alphabet=string.printable, max_size=12),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)


def data_terms(max_depth: int = 3) -> st.SearchStrategy[Data]:
    return st.recursive(
        st.builds(lambda lab: Data(lab, ()), LABELS),
        lambda children: st.builds(
            lambda lab, kids, ordered: Data(lab, tuple(kids), ordered),
            LABELS,
            st.lists(st.one_of(SCALARS, children), max_size=4),
            st.booleans(),
        ),
        max_leaves=10,
    )


def term_to_query(term: Data) -> QTerm:
    """Structure-preserving query: same labels, same mode, total match."""
    children = tuple(
        term_to_query(child) if isinstance(child, Data) else child for child in term.children
    )
    return QTerm(term.label, children, term.ordered, True, term.attrs)


def term_to_construct(term: Data) -> CTerm:
    children = tuple(
        term_to_construct(child) if isinstance(child, Data) else child
        for child in term.children
    )
    return CTerm(term.label, children, term.ordered, term.attrs)


class TestRoundTripProperties:
    @given(data_terms())
    @settings(max_examples=200)
    def test_parse_serialise_round_trip(self, term):
        assert parse_data(to_text(term)) == term

    @given(SCALARS)
    def test_scalar_round_trip(self, value):
        parsed = parse_data(to_text(d("w", value)))
        assert values_equal(parsed.children[0], value)


class TestEqualityProperties:
    @given(data_terms())
    def test_canonical_preserves_semantic_equality(self, term):
        assert values_equal(term, term.canonical())

    @given(data_terms())
    def test_canonical_idempotent(self, term):
        assert term.canonical() == term.canonical().canonical()

    @given(data_terms(), st.randoms())
    def test_unordered_permutation_invariance(self, term, rng):
        if term.ordered or len(term.children) < 2:
            return
        shuffled = list(term.children)
        rng.shuffle(shuffled)
        permuted = term.with_children(tuple(shuffled))
        assert values_equal(term, permuted)
        assert canonical_str(term) == canonical_str(permuted)


class TestMatchingProperties:
    @given(data_terms())
    @settings(max_examples=150)
    def test_ground_term_matches_itself(self, term):
        assert matches(term, term)

    @given(data_terms())
    @settings(max_examples=150)
    def test_structure_preserving_query_matches(self, term):
        assert matches(term_to_query(term), term)

    @given(data_terms())
    @settings(max_examples=100)
    def test_var_wrapping_binds_whole_term(self, term):
        result = match(Var("X"), term)
        assert len(result) == 1
        assert values_equal(result[0]["X"], term)

    @given(data_terms())
    @settings(max_examples=100)
    def test_partial_relaxation_preserves_match(self, term):
        # Dropping totality can only widen the set of matched terms.
        query = term_to_query(term)
        relaxed = QTerm(query.label, query.children, query.ordered, False, query.attrs)
        assert matches(relaxed, term)

    @given(data_terms())
    @settings(max_examples=100)
    def test_wildcard_label_preserves_match(self, term):
        query = term_to_query(term)
        wild = QTerm("*", query.children, query.ordered, query.total, query.attrs)
        assert matches(wild, term)

    @given(data_terms())
    @settings(max_examples=100)
    def test_construct_rebuilds_term(self, term):
        built = instantiate(term_to_construct(term), Bindings())
        assert built == term


class TestBindingsProperties:
    pairs = st.lists(
        st.tuples(st.text(alphabet=string.ascii_uppercase, min_size=1, max_size=2), SCALARS),
        max_size=5,
    )

    @given(pairs, pairs)
    def test_merge_commutative_on_success(self, left_items, right_items):
        left = Bindings(tuple(dict(left_items).items()))
        right = Bindings(tuple(dict(right_items).items()))
        one = left.merge(right)
        other = right.merge(left)
        assert (one is None) == (other is None)
        if one is not None:
            assert one == other

    @given(pairs)
    def test_merge_identity(self, items):
        b = Bindings(tuple(dict(items).items()))
        assert b.merge(Bindings()) == b
        assert Bindings().merge(b) == b

    @given(pairs)
    def test_merge_idempotent(self, items):
        b = Bindings(tuple(dict(items).items()))
        assert b.merge(b) == b

    @given(pairs)
    def test_project_subset(self, items):
        b = Bindings(tuple(dict(items).items()))
        names = set(list(b.names)[:2])
        assert b.project(names).names <= frozenset(names)

"""The flagship property: incremental evaluation ≡ naive re-evaluation.

Thesis 6 claims the data-driven incremental approach computes the same
answers as query-driven full-history evaluation, only cheaper.  Here
hypothesis generates random event queries and random event streams
(including explicit time advances) and requires the two engines to emit
exactly the same answer sets at every step.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import EngineConfig, PyAction, ReactiveEngine, eca
from repro.events import (
    EAggregate,
    EAnd,
    EAtom,
    ECount,
    ENot,
    EOr,
    ESeq,
    EWithin,
    IncrementalEvaluator,
    NaiveEvaluator,
)
from repro.events.model import make_event
from repro.terms import LabelVar, Var, compile_pattern, d, match, q
from repro.terms.ast import Compare, Data, Optional_, QTerm, Without
from repro.web import Simulation

# Small alphabet so that streams actually hit the queries.
LABELS = ["a", "b", "c", "n"]

ATOMS = st.sampled_from(LABELS).map(lambda lab: EAtom(q(lab, Var(f"V_{lab}"))))
GROUND_ATOMS = st.sampled_from(LABELS).map(lambda lab: EAtom(q(lab)))
WINDOWS = st.sampled_from([2.0, 5.0, 10.0])


def _seq_with_negation(children):
    """Insert an ENot in the middle or at the end of a sequence."""
    base, position, label = children
    members = list(base)
    members.insert(position % (len(members)) + 1, ENot(q(label)))
    return EWithin(ESeq(*members), 6.0)


def event_queries() -> st.SearchStrategy:
    simple = st.one_of(ATOMS, GROUND_ATOMS)
    composite = st.one_of(
        st.lists(simple, min_size=2, max_size=3).map(lambda ms: EAnd(*ms)),
        st.lists(simple, min_size=2, max_size=3).map(lambda ms: EOr(*ms)),
        st.lists(simple, min_size=2, max_size=3).map(lambda ms: ESeq(*ms)),
        st.tuples(simple, WINDOWS).map(lambda t: EWithin(t[0], t[1])),
        st.tuples(
            st.lists(GROUND_ATOMS, min_size=2, max_size=3),
            st.integers(min_value=0, max_value=2),
            st.sampled_from(LABELS),
        ).map(_seq_with_negation),
        st.tuples(st.sampled_from(LABELS), st.integers(2, 3), WINDOWS).map(
            lambda t: ECount(q(t[0]), t[1], t[2])
        ),
        st.tuples(st.sampled_from(LABELS), st.integers(2, 3)).map(
            lambda t: EAggregate(q(t[0], Var("P")), "P", "avg", "AVG", size=t[1])
        ),
    )
    nested = st.one_of(
        st.tuples(composite, WINDOWS).map(lambda t: EWithin(t[0], t[1])),
        st.lists(st.one_of(simple, composite), min_size=2, max_size=2).map(
            lambda ms: EAnd(*ms)
        ),
        st.lists(st.one_of(simple, composite), min_size=2, max_size=2).map(
            lambda ms: EOr(*ms)
        ),
        composite,
    )
    return st.one_of(simple, composite, nested)


def streams() -> st.SearchStrategy:
    """A stream of (delta_time, label, value) plus trailing time advances."""
    step = st.tuples(
        st.floats(min_value=0.0, max_value=3.0),
        st.sampled_from(LABELS + ["x"]),  # 'x' never matches: noise
        st.integers(min_value=0, max_value=3),
    )
    return st.lists(step, min_size=0, max_size=14)


@given(event_queries(), streams())
@settings(max_examples=300, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_incremental_equals_naive(query, stream):
    incremental = IncrementalEvaluator(query)
    naive = NaiveEvaluator(query)
    clock = 0.0
    inc_answers: set = set()
    nav_answers: set = set()
    for delta, label, value in stream:
        clock += delta
        event = make_event(d(label, value), clock)
        # Same Event object fed to both engines: identical ids.
        got_inc = incremental.on_event(event)
        got_nav = naive.on_event(event)
        assert set(got_inc) == set(got_nav), (
            f"divergence at t={clock} on {label}: "
            f"incremental={sorted(map(str, got_inc))} naive={sorted(map(str, got_nav))}"
        )
        inc_answers |= set(got_inc)
        nav_answers |= set(got_nav)
    # Drain pending absence deadlines far in the future.
    for horizon in (clock + 5.0, clock + 50.0):
        got_inc = incremental.advance_time(horizon)
        got_nav = naive.advance_time(horizon)
        assert set(got_inc) == set(got_nav)
        inc_answers |= set(got_inc)
        nav_answers |= set(got_nav)
    assert inc_answers == nav_answers


@given(event_queries(), streams())
@settings(max_examples=100, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_no_duplicate_emissions(query, stream):
    """Each engine emits every answer at most once over a whole run."""
    incremental = IncrementalEvaluator(query)
    clock = 0.0
    seen: set = set()
    for delta, label, value in stream:
        clock += delta
        for answer in incremental.on_event(make_event(d(label, value), clock)):
            assert answer not in seen, f"duplicate emission: {answer}"
            seen.add(answer)
    for answer in incremental.advance_time(clock + 100.0):
        assert answer not in seen
        seen.add(answer)


def _run_engine(query, stream, **config_kwargs):
    """Drive a whole node+engine over *stream*; the firing sequence.

    Events are scheduled on the simulation clock (same instants allowed),
    so delivery goes through the node's inbox and absence deadlines through
    the engine's wake-ups — the full production path, unlike the
    evaluator-level tests above.
    """
    sim = Simulation(latency=0.0)
    node = sim.node("http://p.example")
    engine = ReactiveEngine(node, config=EngineConfig(**config_kwargs))
    fired = []
    engine.install(eca(
        "r", query, PyAction(lambda n, b: fired.append(b), "record")
    ))
    clock = 0.0
    for delta, label, value in stream:
        clock += delta
        sim.scheduler.at(clock, lambda t=d(label, value): node.raise_local(t))
    sim.run()
    return fired, engine.stats.rule_firings


@given(event_queries(), streams())
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_queued_delivery_equals_sync(query, stream):
    """The async inbox must not change what fires, how often, or in what
    order — only *when* control reaches the handlers."""
    queued, queued_firings = _run_engine(query, stream, sync_delivery=False)
    inline, inline_firings = _run_engine(query, stream, sync_delivery=True)
    assert queued_firings == inline_firings
    assert queued == inline


@given(event_queries(), streams(), st.sampled_from([1, 2, 3]))
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_inbox_batching_preserves_firings(query, stream, batch):
    """Splitting a backlog over several same-instant drains is invisible."""
    batched, _ = _run_engine(query, stream, inbox_batch=batch)
    whole, _ = _run_engine(query, stream)
    assert batched == whole


@given(event_queries(), streams())
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_coalesced_wakeups_equal_broadcast(query, stream):
    """Advancing only deadline owners at a wake-up must produce exactly the
    broadcast (advance-everything) firing sequence."""
    coalesced, coalesced_firings = _run_engine(query, stream,
                                               coalesced_wakeups=True)
    broadcast, broadcast_firings = _run_engine(query, stream,
                                               coalesced_wakeups=False)
    assert coalesced_firings == broadcast_firings
    assert coalesced == broadcast


# ---------------------------------------------------------------------------
# Discriminating dispatch: broadcast ≡ root-label ≡ two-level net
# ---------------------------------------------------------------------------

SYMBOLS = ["ACME", "IBM", "XYZ"]

# One rule spec: (label, required symbol or None).  None is the residual
# shape (no discriminator); a whole fleet sharing one label exercises the
# second index level, mixed labels the first.
RULE_SPECS = st.lists(
    st.tuples(st.sampled_from(LABELS), st.sampled_from(SYMBOLS + [None])),
    min_size=1,
    max_size=5,
)

# Streams of (delta, label, symbol or None, payload) — events may carry a
# discriminating sym child, several of them, or none at all.
DISC_STREAMS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=3.0),
        st.sampled_from(LABELS + ["x"]),
        st.sampled_from(SYMBOLS + [None, "BOTH"]),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=0,
    max_size=12,
)


def _fleet_rule(index, label, symbol):
    if symbol is None:
        query = EAtom(q(label, q("val", Var("V"))))
    else:
        query = EAtom(q(label, q("sym", symbol), q("val", Var("V"))))
    return index, query


def _disc_event_term(label, symbol, payload):
    children = [d("val", payload)]
    if symbol == "BOTH":  # ambiguous: two sym children
        children = [d("sym", SYMBOLS[0]), d("sym", SYMBOLS[1])] + children
    elif symbol is not None:
        children = [d("sym", symbol)] + children
    return d(label, *children)


def _run_fleet(specs, stream, include_wildcard, **config_kwargs):
    """Drive several rules (shared labels, mixed discriminators) at once."""
    sim = Simulation(latency=0.0)
    node = sim.node("http://p.example")
    engine = ReactiveEngine(node, config=EngineConfig(**config_kwargs))
    fired = []
    for index, (label, symbol) in enumerate(specs):
        name, query = _fleet_rule(index, label, symbol)
        engine.install(eca(
            f"r{name}", query,
            PyAction(lambda n, b, i=index: fired.append((i, b)), "record"),
        ))
    if include_wildcard:
        engine.install(eca(
            "wild", EAtom(q(LabelVar("L"))),
            PyAction(lambda n, b: fired.append(("wild", b)), "record"),
        ))
    clock = 0.0
    for delta, label, symbol, payload in stream:
        clock += delta
        term = _disc_event_term(label, symbol, payload)
        sim.scheduler.at(clock, lambda t=term: node.raise_local(t))
    sim.run()
    return fired, engine.stats.rule_firings, engine.stats.candidates_considered


@given(RULE_SPECS, DISC_STREAMS, st.booleans())
@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_dispatch_modes_agree_on_answers_and_order(specs, stream, wildcard):
    """Broadcast, root-label-only, and discriminating dispatch must produce
    identical answer sets and firing orders; discrimination may only shrink
    the candidate count, never change what fires."""
    disc = _run_fleet(specs, stream, wildcard)
    root = _run_fleet(specs, stream, wildcard, discriminating_index=False)
    bcast = _run_fleet(specs, stream, wildcard, indexed_dispatch=False)
    assert disc[:2] == root[:2] == bcast[:2]
    assert disc[2] <= root[2] <= bcast[2]  # candidates only ever shrink


# ---------------------------------------------------------------------------
# Compiled pattern matchers ≡ interpreted simulation
# ---------------------------------------------------------------------------

PATTERN_LABELS = ["a", "b", "k"]
PATTERN_SCALARS = st.one_of(
    st.integers(min_value=0, max_value=2),
    st.sampled_from(["u", "v", ""]),
    st.booleans(),
    st.sampled_from([1.0, 2.5]),
)


def _data_terms():
    leaves = PATTERN_SCALARS
    return st.recursive(
        leaves,
        lambda children: st.builds(
            lambda label, kids, ordered, attrs: Data(
                label, tuple(kids), ordered, tuple(attrs.items())
            ),
            st.sampled_from(PATTERN_LABELS),
            st.lists(children, max_size=3),
            st.booleans(),
            st.dictionaries(st.sampled_from(["p", "s"]),
                            st.sampled_from(["1", "2"]), max_size=2),
        ),
        max_leaves=6,
    ).filter(lambda t: isinstance(t, Data))


def _patterns():
    child_leaf = st.one_of(
        PATTERN_SCALARS,
        st.sampled_from([Var("X"), Var("Y")]),
        st.builds(Compare, st.sampled_from(["<", ">=", "=="]),
                  st.integers(min_value=0, max_value=2)),
        st.builds(
            lambda label, value: QTerm(label, (value,), False, False),
            st.sampled_from(PATTERN_LABELS),
            st.one_of(PATTERN_SCALARS, st.sampled_from([Var("Z")])),
        ),
    )
    decorated = st.one_of(
        child_leaf,
        child_leaf.map(Optional_),
        child_leaf.map(Without),
    )
    label = st.one_of(st.sampled_from(PATTERN_LABELS),
                      st.just("*"), st.just(LabelVar("L")))
    attrs = st.dictionaries(
        st.sampled_from(["p", "s"]),
        st.one_of(st.sampled_from(["1", "2"]), st.just(Var("A"))),
        max_size=2,
    )
    return st.builds(
        lambda lab, kids, ordered, total, attr_map: QTerm(
            lab, tuple(kids), ordered,
            # 'without' is rejected in ordered total terms; degrade those.
            total and not (ordered and any(isinstance(c, Without) for c in kids)),
            tuple(attr_map.items()),
        ),
        label,
        st.lists(decorated, max_size=3),
        st.booleans(),
        st.booleans(),
        attrs,
    )


@given(_patterns(), _data_terms())
@settings(max_examples=400, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_compiled_pattern_equals_interpreted_match(pattern, data):
    """compile_pattern must agree with match exactly — same binding lists,
    same order — on arbitrary patterns and data terms."""
    assert compile_pattern(pattern)(data) == match(pattern, data)


@given(_patterns(), _data_terms(), st.sampled_from(SYMBOLS))
@settings(max_examples=150, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_compiled_pattern_respects_prior_bindings(pattern, data, bound):
    from repro.terms import Bindings

    pre = Bindings.of(X=bound)
    assert compile_pattern(pattern)(data, pre) == match(pattern, data, pre)


@given(event_queries(), streams())
@settings(max_examples=100, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_frequent_time_advance_is_harmless(query, stream):
    """Interleaving advance_time between events must not change the answers."""
    plain = IncrementalEvaluator(query)
    chatty = IncrementalEvaluator(query)
    clock = 0.0
    plain_all: set = set()
    chatty_all: set = set()
    for delta, label, value in stream:
        clock += delta
        event = make_event(d(label, value), clock)
        plain_all |= set(plain.on_event(event))
        chatty_all |= set(chatty.advance_time(clock))
        chatty_all |= set(chatty.on_event(event))
        chatty_all |= set(chatty.advance_time(clock))
    plain_all |= set(plain.advance_time(clock + 100.0))
    chatty_all |= set(chatty.advance_time(clock + 100.0))
    assert plain_all == chatty_all

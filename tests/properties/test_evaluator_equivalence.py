"""The evaluator-mechanism property: tree ≡ incremental ≡ naive.

The tree evaluator (frequency-ordered join plans over per-leaf buffers)
and the scheduled naive evaluator are alternative *mechanisms* behind the
same contract: identical answers, identical batch order, identical firing
sequences through the full production path.  Hypothesis drives all three
over the house query/stream generators, then repeats the exercise at node
level across shard counts, executors, and mid-run installs — the axes the
issue names — with ``EngineConfig(evaluator=...)`` as the only knob.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.events import (
    IncrementalEvaluator,
    NaiveEvaluator,
    ScheduledNaiveEvaluator,
    TreeEvaluator,
)
from repro.events.model import make_event
from repro.terms import d

from test_event_equivalence import _run_engine, event_queries, streams
from test_shard_equivalence import (
    RULE_SPECS,
    STREAMS,
    _run_fleet,
    _run_fleet_with_mid_run_install,
)

EVALUATOR_NAMES = st.sampled_from(["tree", "naive"])


def _drive_pair(left, right, stream):
    """Feed the *same* Event objects (identical ids) to both evaluators;
    the paired per-step answer batches."""
    clock = 0.0
    batches = []
    for delta, label, value in stream:
        clock += delta
        event = make_event(d(label, value), clock)
        batches.append((left.on_event(event), right.on_event(event)))
    for horizon in (clock + 5.0, clock + 50.0):
        batches.append((left.advance_time(horizon),
                        right.advance_time(horizon)))
    return batches


@given(event_queries(), streams())
@settings(max_examples=200, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_tree_equals_incremental_batches(query, stream):
    """Not just the same answers: the same batches in the same order at
    every step, so downstream firing order is mechanism-independent."""
    clock = 0.0
    tree = TreeEvaluator(query)
    incremental = IncrementalEvaluator(query)
    for delta, label, value in stream:
        clock += delta
        event = make_event(d(label, value), clock)
        got_tree = tree.on_event(event)
        got_inc = incremental.on_event(event)
        assert got_tree == got_inc, (
            f"divergence at t={clock} on {label}: "
            f"tree={list(map(str, got_tree))} inc={list(map(str, got_inc))}"
        )
    for horizon in (clock + 5.0, clock + 50.0):
        assert tree.advance_time(horizon) == incremental.advance_time(horizon)


@given(event_queries(), streams())
@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_tree_equals_naive_answer_sets(query, stream):
    """Against the specification evaluator the comparison is per-step
    answer sets (naive has no incremental batch-order guarantee)."""
    for got_tree, got_naive in _drive_pair(
            TreeEvaluator(query), NaiveEvaluator(query), stream):
        assert set(got_tree) == set(got_naive)


@given(event_queries(), streams(), st.integers(min_value=1, max_value=5))
@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_replan_mid_stream_is_invisible(query, stream, cut):
    """Re-ordering the join plan while partial matches are buffered must
    not change a single batch.  The skewed rates push the plan away from
    textual order, so the rebuild actually moves leaves."""
    plain = TreeEvaluator(query)
    replanned = TreeEvaluator(query)
    clock = 0.0
    for step, (delta, label, value) in enumerate(stream):
        clock += delta
        event = make_event(d(label, value), clock)
        assert replanned.on_event(event) == plain.on_event(event)
        if step % cut == 0:
            replanned.replan({"a": 100.0, "b": 1.0, "c": 50.0, "n": 2.0})
    horizon = clock + 50.0
    assert replanned.advance_time(horizon) == plain.advance_time(horizon)


@given(event_queries(), streams())
@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_scheduled_naive_matches_deadline_driven_naive(query, stream):
    """ScheduledNaiveEvaluator must emit absence answers when *polled only
    at its own advertised deadlines*, exactly like the plain naive
    evaluator polled continuously — that is what lets the engine drive it
    with wake-ups instead of a clock tick per instant."""
    scheduled = ScheduledNaiveEvaluator(query)
    polled = NaiveEvaluator(query)
    clock = 0.0
    sched_all: set = set()
    polled_all: set = set()
    for delta, label, value in stream:
        clock += delta
        # Honour every advertised deadline up to now, like engine wake-ups.
        while True:
            deadline = scheduled.next_deadline()
            if deadline is None or deadline > clock:
                break
            sched_all |= set(scheduled.advance_time(deadline))
            polled_all |= set(polled.advance_time(deadline))
        event = make_event(d(label, value), clock)
        sched_all |= set(scheduled.on_event(event))
        polled_all |= set(polled.on_event(event))
        assert sched_all == polled_all
    horizon = clock + 100.0
    sched_all |= set(scheduled.advance_time(horizon))
    polled_all |= set(polled.advance_time(horizon))
    assert sched_all == polled_all


@given(event_queries(), streams(), EVALUATOR_NAMES)
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_engine_firing_sequence_is_mechanism_independent(
        query, stream, evaluator):
    """The full production path — inbox, dispatch, wake-ups — must fire
    the same rules with the same bindings in the same order whichever
    mechanism EngineConfig selects."""
    baseline, baseline_firings = _run_engine(query, stream)
    other, other_firings = _run_engine(query, stream, evaluator=evaluator)
    assert other_firings == baseline_firings
    assert other == baseline


@given(RULE_SPECS, STREAMS, st.sampled_from([1, 2, 4]),
       st.sampled_from(["inline", "threads"]))
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_tree_fleet_equals_incremental_fleet(specs, stream, n_shards, executor):
    """The issue's acceptance matrix: shards ∈ {1, 2, 4} × executor ∈
    {inline, threads}, tree vs incremental, full node path."""
    baseline, baseline_firings = _run_fleet(specs, stream)
    kwargs = {"evaluator": "tree"}
    if n_shards > 1:
        kwargs.update(shards=n_shards, executor=executor)
    tree, tree_firings = _run_fleet(specs, stream, **kwargs)
    assert tree_firings == baseline_firings
    assert tree == baseline


@given(RULE_SPECS, STREAMS, st.sampled_from([1, 4]),
       st.integers(min_value=0, max_value=4))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_tree_mid_run_install_preserves_equivalence(
        specs, stream, n_shards, extra_rules):
    """Mid-run installs re-partition shards and rebuild evaluators while
    partial matches are live; the tree mechanism (including its migrated
    buffers and replanned joins) must stay observably identical."""
    if not stream:
        return
    run = _run_fleet_with_mid_run_install
    kwargs = {"evaluator": "tree"}
    if n_shards > 1:
        kwargs["shards"] = n_shards
    assert run(specs, stream, extra_rules, **kwargs) == \
        run(specs, stream, extra_rules)

"""The dispatch-trie property: every index shape fires identically.

Hypothesis generates rule bases whose event queries pin *several* axes at
once (attribute constants, constant children, both, neither) plus
wildcards and absence rules, and event streams that exhibit those axes
unambiguously, partially, or ambiguously (several same-label children).
The multi-level discrimination trie (default), the two-level net
(``trie_depth=1``), the root-label ablation (``discriminating_index=
False``) and the broadcast ablation (``indexed_dispatch=False``) must all
produce the same answers in the same firing order — as must every shard
count and executor, including mid-run installs *and* uninstalls (the
eager-prune path).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import EngineConfig, Simulation
from repro.core import eca
from repro.core.actions import PyAction
from repro.events import EAtom, ENot, ESeq, EWithin
from repro.terms import LabelVar, Var, d, q
from repro.terms.ast import Data

# "hot" twice: concentrating rules on one label makes the router's
# hot-label split (attr or child axis) actually trigger.
LABELS = ["hot", "hot", "cold"]
SYMBOLS = ["ACME", "IBM", "XYZ"]
VENUES = ["NYSE", "LSE"]

# One rule spec:
#   ("deep", label, sym|None, venue|None) — a query pinning up to two
#       axes: the `sym` attribute and a constant `venue` child.  With
#       both None it is the label's residual rule.
#   ("wild",)                — label wildcard, replicated everywhere
#   ("absent", label, label) — absence deadline (wake-up merging)
RULE_SPECS = st.lists(
    st.one_of(
        st.tuples(st.just("deep"), st.sampled_from(LABELS),
                  st.sampled_from(SYMBOLS + [None]),
                  st.sampled_from(VENUES + [None])),
        st.tuples(st.just("wild")),
        st.tuples(st.just("absent"), st.sampled_from(LABELS),
                  st.sampled_from(LABELS)),
    ),
    min_size=1,
    max_size=7,
)

# Stream steps: (delta, label, sym|None, venue|None|"BOTH", payload).
# "BOTH" emits two venue children — ambiguous on the (child, venue) axis,
# the case that must route to every shard of a split label.
STREAMS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=3.0),
        st.sampled_from(["hot", "cold", "x"]),
        st.sampled_from(SYMBOLS + [None]),
        st.sampled_from(VENUES + [None, "BOTH"]),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=0,
    max_size=10,
)


def _build_rule(index, spec, fired):
    kind = spec[0]
    record = PyAction(lambda n, b, i=index: fired.append((i, str(b))), "record")
    if kind == "deep":
        _, label, symbol, venue = spec
        children = [q("val", Var("V"))]
        if venue is not None:
            children.insert(0, q("venue", venue))
        attrs = {} if symbol is None else {"sym": symbol}
        return eca(f"r{index}", EAtom(q(label, *children, **attrs)), record)
    if kind == "wild":
        return eca(f"r{index}", EAtom(q(LabelVar("L"))), record)
    _, label, blocker = spec
    return eca(
        f"r{index}",
        EWithin(ESeq(EAtom(q(label, q("val", Var("V")))), ENot(q(blocker))), 4.0),
        record,
    )


def _event_term(label, symbol, venue, payload):
    children = []
    if venue == "BOTH":
        children = [d("venue", VENUES[0]), d("venue", VENUES[1])]
    elif venue is not None:
        children = [d("venue", venue)]
    children.append(d("val", payload))
    attrs = () if symbol is None else (("sym", symbol),)
    return Data(label, tuple(children), False, attrs)


def _run(specs, stream, mid_run=False, **config_kwargs):
    sim = Simulation(latency=0.0)
    node = sim.reactive_node("http://t.example",
                             config=EngineConfig(**config_kwargs))
    fired = []
    node.install(*(
        _build_rule(index, spec, fired) for index, spec in enumerate(specs)
    ))
    cut = len(stream) // 2
    clock = 0.0
    for step, (delta, label, symbol, venue, payload) in enumerate(stream):
        clock += delta
        term = _event_term(label, symbol, venue, payload)
        sim.scheduler.at(clock, lambda t=term: node.raise_local(t))
        if mid_run and step == cut:
            # A re-partition and an eager prune while evaluators hold
            # partial matches and events sit queued.
            def churn():
                node.install(
                    _build_rule(100, ("deep", "hot", SYMBOLS[0], None), fired),
                    _build_rule(101, ("deep", "hot", None, VENUES[1]), fired),
                )
                node.uninstall("r0")
            sim.scheduler.at(clock, churn)
    sim.run()
    return fired, node.stats.rule_firings


@given(RULE_SPECS, STREAMS)
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_trie_equals_every_dispatch_ablation(specs, stream):
    """trie ≡ two-level ≡ root-label ≡ broadcast on one engine."""
    trie = _run(specs, stream)
    assert _run(specs, stream, trie_depth=1) == trie
    assert _run(specs, stream, discriminating_index=False) == trie
    assert _run(specs, stream, indexed_dispatch=False) == trie


@given(RULE_SPECS, STREAMS, st.sampled_from([2, 3]))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_trie_depth_cap_is_observably_free(specs, stream, cap):
    """Capping the trie depth changes probe counts, never behaviour."""
    assert _run(specs, stream, trie_depth=cap) == _run(specs, stream)


@given(RULE_SPECS, STREAMS, st.sampled_from([2, 4]),
       st.sampled_from(["inline", "threads"]))
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_sharded_trie_equals_single_engine(specs, stream, n_shards, executor):
    """Trie-prefix partitioning (multi-axis splits, ambiguous events
    delivered to all shards) must reproduce shards=1 exactly."""
    single = _run(specs, stream)
    sharded = _run(specs, stream, shards=n_shards, executor=executor)
    assert sharded == single


@given(RULE_SPECS, STREAMS, st.sampled_from([1, 2, 4]),
       st.sampled_from(["inline", "threads"]))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_mid_run_install_and_uninstall_stay_equivalent(
        specs, stream, n_shards, executor):
    """Incremental trie edits (install + eager uninstall prune) mid-run
    must match the single-engine inline baseline."""
    if not stream:
        return
    baseline = _run(specs, stream, mid_run=True)
    churned = _run(specs, stream, mid_run=True,
                   shards=n_shards, executor=executor)
    assert churned == baseline


def _grouped_rules(fired):
    """A fixed overlapping rule base: every combinator kind, one label."""
    from repro.core import first_match, priority_group, specificity_override

    def record(tag):
        return PyAction(lambda n, b, t=tag: fired.append((t, str(b))), "record")

    fm = first_match("fm")
    fm.add(eca("pin", EAtom(q("hot", sym=SYMBOLS[0])), record("fm/pin")))
    fm.add(eca("any", EAtom(q("hot", q("val", Var("V")))), record("fm/any")))
    pg = priority_group("pg")
    pg.add(eca("low", EAtom(q("hot", q("val", Var("V")))), record("pg/low")),
           priority=1.0)
    pg.add(eca("high", EAtom(q("hot", sym=SYMBOLS[1])), record("pg/high")),
           priority=2.0)
    so = specificity_override("so")
    so.add(eca("exact", EAtom(q("hot", q("venue", VENUES[0]))), record("so/exact")))
    so.add(eca("loose", EAtom(q("hot", q("val", Var("V")))), record("so/loose")))
    plain = eca("plain", EAtom(q("cold", q("val", Var("V")))), record("plain"))
    return [fm, pg, so, plain]


@given(STREAMS, st.sampled_from([1, 2, 4]),
       st.sampled_from(["inline", "threads"]))
@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_combinator_groups_shard_transparently(stream, n_shards, executor):
    """Winner resolution must not depend on shard count or executor."""
    def run(**config_kwargs):
        sim = Simulation(latency=0.0)
        node = sim.reactive_node("http://t.example",
                                 config=EngineConfig(**config_kwargs))
        fired = []
        node.install(*_grouped_rules(fired))
        clock = 0.0
        for delta, label, symbol, venue, payload in stream:
            clock += delta
            term = _event_term(label, symbol, venue, payload)
            sim.scheduler.at(clock, lambda t=term: node.raise_local(t))
        sim.run()
        suppressed = node.stats.firings_suppressed
        return fired, suppressed

    single = run()
    sharded = run(shards=n_shards, executor=executor)
    assert sharded == single

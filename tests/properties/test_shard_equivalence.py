"""The sharding property: N engine shards ≡ one engine, observably.

Hypothesis generates random rule fleets (label rules with and without
discriminator constants, wildcard rules, absence rules, cross-label
sequences) and random event streams (shared instants, ambiguous
discriminators, unknown labels), then requires a sharded node to produce
*exactly* the single-engine node's firing sequence — same rules, same
bindings, same order — through the full production path: node inbox,
router, per-shard inboxes, discrimination net, absence wake-ups.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import EngineConfig, Simulation
from repro.core import eca
from repro.core.actions import PyAction
from repro.events import EAtom, ENot, ESeq, EWithin
from repro.terms import LabelVar, Var, d, q

LABELS = ["a", "b", "c", "n"]
SYMBOLS = ["ACME", "IBM", "XYZ"]

# One rule spec; the shapes cover every placement class the router knows:
#   ("atom", label, symbol|None)  - single label, optionally value-pinned
#   ("wild",)                     - wildcard: replicated to every shard
#   ("absent", label, label2)     - absence deadline (wake-up merging)
#   ("seq", label, label2)        - may span two shards (replication)
RULE_SPECS = st.lists(
    st.one_of(
        st.tuples(st.just("atom"), st.sampled_from(LABELS),
                  st.sampled_from(SYMBOLS + [None])),
        st.tuples(st.just("wild")),
        st.tuples(st.just("absent"), st.sampled_from(LABELS),
                  st.sampled_from(LABELS)),
        st.tuples(st.just("seq"), st.sampled_from(LABELS),
                  st.sampled_from(LABELS)),
    ),
    min_size=1,
    max_size=6,
)

# Streams of (delta, label, symbol-or-marker, payload); "BOTH" produces an
# event with two sym children (ambiguous on a child axis), None omits it.
STREAMS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=3.0),
        st.sampled_from(LABELS + ["x"]),
        st.sampled_from(SYMBOLS + [None, "BOTH"]),
        st.integers(min_value=0, max_value=3),
    ),
    min_size=0,
    max_size=12,
)


def _build_rule(index, spec, fired):
    kind = spec[0]
    record = PyAction(lambda n, b, i=index: fired.append((i, str(b))), "record")
    if kind == "atom":
        _, label, symbol = spec
        if symbol is None:
            query = EAtom(q(label, q("val", Var("V"))))
        else:
            # An attribute constant: the discriminator axis the router may
            # split the hot label on.
            query = EAtom(q(label, q("val", Var("V")), sym=symbol))
        return eca(f"r{index}", query, record)
    if kind == "wild":
        return eca(f"r{index}", EAtom(q(LabelVar("L"))), record)
    if kind == "absent":
        _, label, blocker = spec
        return eca(
            f"r{index}",
            EWithin(ESeq(EAtom(q(label, q("val", Var("V")))), ENot(q(blocker))), 4.0),
            record,
        )
    _, first, second = spec
    return eca(
        f"r{index}",
        EWithin(ESeq(EAtom(q(first)), EAtom(q(second))), 8.0),
        record,
    )


def _event_term(label, symbol, payload):
    children = (d("val", payload),)
    if symbol == "BOTH":  # two sym children: ambiguous below the root label
        return d(label, d("sym", SYMBOLS[0]), d("sym", SYMBOLS[1]), *children)
    if symbol is None:
        return d(label, *children)
    # Attribute + child form, so both discriminator kinds are exercised.
    from repro.terms.ast import Data

    return Data(label, (d("sym", symbol),) + children, False, (("sym", symbol),))


def _run_fleet(specs, stream, **config_kwargs):
    sim = Simulation(latency=0.0)
    node = sim.reactive_node("http://p.example",
                             config=EngineConfig(**config_kwargs))
    fired = []
    node.install(*(
        _build_rule(index, spec, fired) for index, spec in enumerate(specs)
    ))
    clock = 0.0
    for delta, label, symbol, payload in stream:
        clock += delta
        term = _event_term(label, symbol, payload)
        sim.scheduler.at(clock, lambda t=term: node.raise_local(t))
    sim.run()
    return fired, node.stats.rule_firings


@given(RULE_SPECS, STREAMS, st.sampled_from([2, 3, 4]))
@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_sharded_equals_single_engine(specs, stream, n_shards):
    """shards=N must reproduce the shards=1 firing sequence exactly."""
    single, single_firings = _run_fleet(specs, stream)
    sharded, sharded_firings = _run_fleet(specs, stream, shards=n_shards)
    assert sharded_firings == single_firings
    assert sharded == single


@given(RULE_SPECS, STREAMS, st.sampled_from([1, 2, 3]))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_shard_fairness_batching_preserves_order(specs, stream, batch):
    """The per-shard drain budget must never reorder observable firings."""
    batched, _ = _run_fleet(specs, stream, shards=4, inbox_batch=batch)
    whole, _ = _run_fleet(specs, stream, shards=4)
    assert batched == whole


@given(RULE_SPECS, STREAMS)
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_sharded_broadcast_wakeups_equal_coalesced(specs, stream):
    """The E14 wake-up ablation must hold on a sharded node too."""
    coalesced, _ = _run_fleet(specs, stream, shards=3)
    broadcast, _ = _run_fleet(specs, stream, shards=3, coalesced_wakeups=False)
    assert broadcast == coalesced


def _run_fleet_with_mid_run_install(specs, stream, extra_rules, **config_kwargs):
    sim = Simulation(latency=0.0)
    node = sim.reactive_node("http://p.example",
                             config=EngineConfig(**config_kwargs))
    fired = []
    node.install(*(
        _build_rule(index, spec, fired)
        for index, spec in enumerate(specs)
    ))
    cut = len(stream) // 2
    clock = 0.0
    for step, (delta, label, symbol, payload) in enumerate(stream):
        clock += delta
        term = _event_term(label, symbol, payload)
        sim.scheduler.at(clock, lambda t=term: node.raise_local(t))
        if step == cut:
            # Installing disjoint-label rules mid-run forces a
            # re-partition while evaluators hold partial matches.
            sim.scheduler.at(clock, lambda: node.install(*(
                _build_rule(100 + i, ("atom", f"mid-{i}", None), fired)
                for i in range(extra_rules)
            )))
    sim.run()
    return fired


@given(RULE_SPECS, STREAMS, st.integers(min_value=0, max_value=5))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_mid_run_install_preserves_equivalence(specs, stream, extra_rules):
    """Repartitioning mid-run (evaluator migration) must stay equivalent."""
    if not stream:
        return
    run = _run_fleet_with_mid_run_install
    assert run(specs, stream, extra_rules, shards=4) == \
        run(specs, stream, extra_rules)


@given(RULE_SPECS, STREAMS, st.sampled_from([2, 4]),
       st.sampled_from([None, 1, 2]))
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_threaded_executor_equals_single_engine(specs, stream, n_shards, batch):
    """The E17 property: per-shard worker threads with the epoch/barrier
    protocol must reproduce the single inline engine's answers AND firing
    order exactly — across shard counts and fairness batching."""
    single, single_firings = _run_fleet(specs, stream)
    kwargs = {"shards": n_shards, "executor": "threads"}
    if batch is not None:
        kwargs["inbox_batch"] = batch
    threaded, threaded_firings = _run_fleet(specs, stream, **kwargs)
    assert threaded_firings == single_firings
    assert threaded == single


@given(RULE_SPECS, STREAMS, st.sampled_from([2, 4]),
       st.integers(min_value=0, max_value=5))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_threaded_mid_run_install_preserves_equivalence(
        specs, stream, n_shards, extra_rules):
    """Mid-run installs (frozen re-partition, evaluator migration) under
    the threaded executor must match the inline single engine."""
    if not stream:
        return
    run = _run_fleet_with_mid_run_install
    assert run(specs, stream, extra_rules,
               shards=n_shards, executor="threads") == \
        run(specs, stream, extra_rules)

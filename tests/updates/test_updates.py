"""Unit tests for update primitives and transactions."""

import pytest

from repro.errors import TransactionError, UpdateError
from repro.terms import Bindings, Var, d, parse_construct, parse_data, parse_query, to_text, u
from repro.terms.rdf import Graph, Triple
from repro.updates import (
    Transaction,
    atomically,
    delete_terms,
    insert_child,
    rdf_delete,
    rdf_insert,
    replace_terms,
)
from repro.web.resources import ResourceStore


DOC = parse_data(
    'shop{ item{ id["a"], qty[2] }, item{ id["b"], qty[0] }, note["hi"] }'
)


class TestInsert:
    def test_insert_at_end(self):
        root, count = insert_child(DOC, parse_query("shop"), parse_data("item{}"))
        assert count == 1
        assert root.children[-1] == d("item", ordered=False) or root.children[-1].label == "item"

    def test_insert_at_start(self):
        root, count = insert_child(DOC, parse_query("shop"), parse_data("flag"),
                                   position="start")
        assert count == 1
        assert root.children[0] == d("flag")

    def test_insert_into_every_match(self):
        root, count = insert_child(DOC, parse_query("item"), parse_data("seen"))
        assert count == 2
        for item in root.all("item"):
            assert item.first("seen") is not None

    def test_insert_construct_uses_bindings(self):
        root, count = insert_child(
            DOC,
            parse_query("shop"),
            parse_construct("status{ var S }"),
            Bindings.of(S="open"),
        )
        assert count == 1
        assert root.first("status").children[0] == "open"

    def test_insert_bad_position(self):
        with pytest.raises(UpdateError):
            insert_child(DOC, parse_query("shop"), parse_data("x"), position="middle")

    def test_no_match_returns_zero(self):
        root, count = insert_child(DOC, parse_query("warehouse"), parse_data("x"))
        assert count == 0
        assert root == DOC


class TestDelete:
    def test_delete_matching_subterms(self):
        root, count = delete_terms(DOC, parse_query("note"))
        assert count == 1
        assert root.first("note") is None

    def test_delete_with_bindings_filter(self):
        root, count = delete_terms(
            DOC, parse_query('item{{ id[var I] }}'), Bindings.of(I="b")
        )
        assert count == 1
        assert len(root.all("item")) == 1
        assert root.first("item").first("id").value == "a"

    def test_delete_root_protected(self):
        with pytest.raises(UpdateError):
            delete_terms(DOC, parse_query("shop"))

    def test_delete_nested(self):
        root, count = delete_terms(DOC, parse_query("qty[0]"))
        assert count == 1


class TestReplace:
    def test_replace_rebuilds_value(self):
        root, count = replace_terms(
            DOC, parse_query("qty[var Q]"), parse_construct("qty[add(var Q, 10)]")
        )
        assert count == 2
        quantities = sorted(item.first("qty").value for item in root.all("item"))
        assert quantities == [10, 12]

    def test_replace_scalar_result_rejected(self):
        with pytest.raises(UpdateError):
            replace_terms(DOC, parse_query("note"), parse_construct('"just a string"'))

    def test_replace_respects_outer_bindings(self):
        root, count = replace_terms(
            DOC,
            parse_query('item{{ id[var I], qty[var Q] }}'),
            parse_construct("item{ id[var I], qty[99] }"),
            Bindings.of(I="a"),
        )
        assert count == 1


class TestRdfUpdates:
    def test_insert_counts_new(self):
        graph = Graph()
        assert rdf_insert(graph, Triple("s", "p", "o")) == 1
        assert rdf_insert(graph, Triple("s", "p", "o")) == 0
        assert rdf_insert(graph, [Triple("a", "p", "b"), Triple("a", "p", "c")]) == 2

    def test_delete_by_pattern(self):
        graph = Graph()
        graph.assert_("a", "p", "b")
        graph.assert_("a", "q", "c")
        assert rdf_delete(graph, ("a", "p", None)) == 1
        assert len(graph) == 1


class TestTransactions:
    def _store(self):
        store = ResourceStore()
        store.put("http://a.example/doc", d("doc", 1))
        return store

    def test_commit_keeps_changes(self):
        store = self._store()
        with Transaction(store):
            store.put("http://a.example/doc", d("doc", 2))
        assert store.get("http://a.example/doc") == d("doc", 2)

    def test_exception_rolls_back(self):
        store = self._store()
        with pytest.raises(ValueError):
            with Transaction(store):
                store.put("http://a.example/doc", d("doc", 2))
                store.put("http://a.example/new", d("n"))
                raise ValueError("boom")
        assert store.get("http://a.example/doc") == d("doc", 1)
        assert "http://a.example/new" not in store

    def test_explicit_rollback(self):
        store = self._store()
        transaction = Transaction(store)
        store.put("http://a.example/doc", d("doc", 2))
        transaction.rollback()
        assert store.get("http://a.example/doc") == d("doc", 1)

    def test_double_finish_rejected(self):
        store = self._store()
        transaction = Transaction(store)
        transaction.commit()
        with pytest.raises(TransactionError):
            transaction.rollback()

    def test_multi_store_atomicity(self):
        left, right = self._store(), ResourceStore()
        with pytest.raises(RuntimeError):
            with Transaction(left, right):
                left.put("http://a.example/doc", d("doc", 9))
                right.put("http://b.example/doc", d("d"))
                raise RuntimeError
        assert left.get("http://a.example/doc") == d("doc", 1)
        assert "http://b.example/doc" not in right

    def test_atomically_returns_value(self):
        store = self._store()
        result = atomically(store, lambda: 42)
        assert result == 42

    def test_needs_a_store(self):
        with pytest.raises(TransactionError):
            Transaction()

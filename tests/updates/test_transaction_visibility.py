"""Thesis-8 transactional visibility: watchers never see rolled-back state.

Regression suite for the atomicity leak where ``ResourceStore`` notified
watchers synchronously from puts/deletes *inside* a transaction, so
polling watchers and Thesis-10 identity monitors observed intermediate
states of transactions that later rolled back (phantom
``resource-changed`` events), and for the version regression where a
delete→put sequence restarted the version counter below what the delete
had already announced.
"""

import pytest

from repro import Simulation, d
from repro.core import QueryCond, ReactiveEngine, eca
from repro.core.actions import PutResource, PyAction, Sequence
from repro.core.identity import ChangeMonitor
from repro.deductive import DeductiveRule, Match, Program
from repro.errors import ActionError
from repro.events import EAtom
from repro.terms import Bindings, Var, c, parse_query, q
from repro.updates import Transaction
from repro.web.resources import ResourceStore

DOC = "http://a.example/doc"


def watched_store():
    store = ResourceStore()
    seen = []
    store.watch(lambda uri, old, new, v: seen.append((uri, old, new, v)))
    return store, seen


class TestBufferedNotifications:
    def test_commit_flushes_in_update_order(self):
        store, seen = watched_store()
        with Transaction(store):
            store.put(DOC, d("doc", 1))
            store.put(DOC, d("doc", 2))
            assert seen == []  # nothing leaks before the outcome is known
        assert [(new, v) for _u, _o, new, v in seen] == \
            [(d("doc", 1), 1), (d("doc", 2), 2)]

    def test_rollback_suppresses_phantom_notifications(self):
        store, seen = watched_store()
        with pytest.raises(ValueError):
            with Transaction(store):
                store.put(DOC, d("doc", 1))
                store.delete(DOC)
                raise ValueError("boom")
        assert seen == []  # the transaction never happened; watchers agree

    def test_nested_inner_rollback_keeps_outer_changes(self):
        store, seen = watched_store()
        with Transaction(store):
            store.put(DOC, d("doc", 1))
            with pytest.raises(RuntimeError):
                with Transaction(store):
                    store.put(DOC, d("doc", 99))
                    raise RuntimeError
            store.put(DOC, d("doc", 2))
        # The inner scope's notification is gone; the outer scope's flushed.
        assert [new for _u, _o, new, _v in seen] == [d("doc", 1), d("doc", 2)]

    def test_outside_transactions_notification_is_synchronous(self):
        store, seen = watched_store()
        store.put(DOC, d("doc", 1))
        assert len(seen) == 1

    def test_abandoned_transaction_does_not_silence_watchers_forever(self):
        """A Transaction that is constructed but never finished must not
        leave the store buffering notifications for the rest of its life."""
        import gc

        store, seen = watched_store()
        transaction = Transaction(store)
        store.put(DOC, d("doc", 1))  # buffered under the open scope
        del transaction
        gc.collect()
        assert not store.in_transaction()
        store.put(DOC, d("doc", 2))
        assert [v for _u, _o, _n, v in seen] == [2]  # live again

    def test_abandoned_transaction_in_a_reference_cycle_under_gc(self):
        """The abandonment cleanup must also run when the Transaction is
        only reachable through a reference cycle — the common leak shape
        (a handler object holding the transaction *and* itself) where
        ``__del__`` fires from the cycle collector, not from refcounting.
        """
        import gc

        store, seen = watched_store()

        class Holder:
            pass

        holder = Holder()
        holder.transaction = Transaction(store)
        holder.self_reference = holder          # the cycle
        store.put(DOC, d("doc", 1))             # buffered under the scope
        del holder
        gc.collect()                            # cycle collector runs __del__
        assert not store.in_transaction()
        store.put(DOC, d("doc", 2))
        assert [v for _u, _o, _n, v in seen] == [2]

    def test_rollback_inside_nested_commit_flushes_survivors_in_order(self):
        """An inner rollback mid-transaction discards exactly its own
        scope; the outer commit then flushes the surviving notifications
        in original update order — including updates made *after* the
        inner scope collapsed — as one atomic unit at the seam."""
        store, seen = watched_store()
        commits = []
        original = store._persist
        store._persist = lambda ops: (commits.append(tuple(ops)),
                                      original(ops))[1]
        with Transaction(store):
            store.put(DOC, d("doc", "outer-1"))
            inner = Transaction(store)
            store.put(DOC, d("doc", "inner"))
            store.put("http://a.example/tmp", d("tmp"))
            inner.rollback()
            store.put(DOC, d("doc", "outer-2"))
        assert [new for _u, _o, new, _v in seen] == \
            [d("doc", "outer-1"), d("doc", "outer-2")]
        # The persistence seam saw ONE commit holding both survivors.
        assert len(commits) == 1
        assert [op[2] for op in commits[0]] == \
            [d("doc", "outer-1"), d("doc", "outer-2")]


class TestEngineAtomicSequence:
    def _node(self):
        sim = Simulation(latency=0.0)
        node = sim.node("http://a.example")
        engine = ReactiveEngine(node)
        return sim, node, engine

    def test_failing_sequence_first_put_never_reaches_watcher(self):
        """The satellite's exact scenario: an atomic ``Sequence`` whose
        first step PUTs and whose second step fails must roll back
        without the PUT ever reaching a watcher."""
        sim, node, engine = self._node()
        seen = []
        node.resources.watch(lambda uri, old, new, v: seen.append((uri, new, v)))

        def fail(n, b):
            raise ActionError("second step fails")

        engine.install(eca(
            "atomic",
            EAtom(q("go", Var("V"))),
            Sequence(
                PutResource(DOC, d("doc", 1)),
                PyAction(fail, "fail"),
                atomic=True,
            ),
        ))
        node.raise_local(d("go", 1))
        with pytest.raises(ActionError):
            sim.run()
        assert DOC not in node.resources  # rolled back...
        assert seen == []                 # ...and invisible to watchers
        assert engine.stats.rollbacks == 1

    def test_committed_sequence_notifies_after_commit(self):
        sim, node, engine = self._node()
        seen = []
        node.resources.watch(lambda uri, old, new, v: seen.append(v))
        engine.install(eca(
            "atomic",
            EAtom(q("go", Var("V"))),
            Sequence(
                PutResource(DOC, d("doc", 1)),
                PutResource(DOC, d("doc", 2)),
                atomic=True,
            ),
        ))
        node.raise_local(d("go", 1))
        sim.run()
        assert seen == [1, 2]

    def test_identity_monitor_sees_no_phantom_items(self):
        """A Thesis-10 monitor must not raise item events for state a
        rollback erased."""
        sim, node, engine = self._node()
        node.put(DOC, d("items"))
        monitor = ChangeMonitor(node, DOC, q("item"), mode="surrogate")

        def fail(n, b):
            raise ActionError("abort")

        engine.install(eca(
            "atomic",
            EAtom(q("go", Var("V"))),
            Sequence(
                PutResource(DOC, d("items", d("item", d("id", 7)))),
                PyAction(fail, "fail"),
                atomic=True,
            ),
        ))
        node.raise_local(d("go", 1))
        with pytest.raises(ActionError):
            sim.run()
        assert monitor.stats.inserted == 0
        assert monitor.stats.deleted == 0

    def test_web_view_cache_invalidated_by_rollback(self):
        """The deductive-view cache registers as an *immediate* watcher:
        it may materialise from uncommitted state mid-transaction, so a
        rollback must invalidate it again or conditions would keep
        querying documents that no longer exist."""
        from repro.core import conditions as cond

        sim, node, engine = self._node()
        node.put(DOC, d("facts", d("base", "a")))
        engine.define_web_views(DOC, Program([
            DeductiveRule(c("derived", Var("X")),
                          (Match(parse_query("base[var X]")),)),
        ]))

        def probe(value):
            return cond.evaluate(
                QueryCond(DOC, parse_query(f'derived["{value}"]')),
                node, Bindings(), views=engine._web_views,
            )

        def fail(n, b):
            # Materialise the view from the uncommitted document...
            assert probe("b")
            raise ActionError("abort")

        engine.install(eca(
            "atomic",
            EAtom(q("go", Var("V"))),
            Sequence(
                PutResource(DOC, d("facts", d("base", "b"))),
                PyAction(fail, "fail"),
                atomic=True,
            ),
        ))
        node.raise_local(d("go", 1))
        with pytest.raises(ActionError):
            sim.run()
        # After rollback the view must answer from the restored document.
        assert not probe("b")
        assert probe("a")


class TestMonotonicVersions:
    def test_delete_then_put_keeps_versions_monotonic(self):
        """Regression: ``delete`` announced ``old.version + 1`` but a
        re-creating ``put`` restarted at 1, so version-based change
        detection saw time run backwards."""
        store, seen = watched_store()
        store.put(DOC, d("doc", 1))      # v1
        store.put(DOC, d("doc", 2))      # v2
        store.delete(DOC)                # announces v3
        store.put(DOC, d("doc", 3))      # must continue past v3
        versions = [v for _u, _o, _n, v in seen]
        assert versions == [1, 2, 3, 4]
        assert versions == sorted(versions)
        assert store.version(DOC) == 4

    def test_repeated_delete_put_cycles_never_regress(self):
        store, seen = watched_store()
        for i in range(3):
            store.put(DOC, d("doc", i))
            store.delete(DOC)
        versions = [v for _u, _o, _n, v in seen]
        assert versions == [1, 2, 3, 4, 5, 6]

    def test_restore_never_announces_a_version_below_the_floor(self):
        """Regression: ``restore()`` re-announced a reverted document at
        its *recorded* snapshot version, so an immediate watcher that had
        already heard the rolled-back delete's ``old + 1`` saw version
        time run backwards on rollback.  The announced version must be
        ``max(snapshot version, floor)``."""
        store = ResourceStore()
        store.put(DOC, d("doc", 1))              # v1
        versions = []
        store.watch(lambda _u, _o, _n, v: versions.append(v),
                    immediate=True)
        with pytest.raises(RuntimeError):
            with Transaction(store):
                store.delete(DOC)                # immediate watcher hears v2
                raise RuntimeError
        # The rollback re-announces DOC (content back to d("doc", 1));
        # before the fix this arrived as v1 — below the v2 already heard.
        assert versions == [2, 2]
        assert versions == sorted(versions)
        assert store.get(DOC) == d("doc", 1)

    def test_restore_announces_monotonic_versions_across_uris(self):
        """Same property through a multi-URI rollback: every immediate
        re-notification stays at-or-above anything previously announced
        for that URI."""
        store = ResourceStore()
        store.put(DOC, d("doc", 1))
        heard: dict[str, list[int]] = {}
        store.watch(lambda u, _o, _n, v: heard.setdefault(u, []).append(v),
                    immediate=True)
        other = "http://a.example/other"
        with pytest.raises(RuntimeError):
            with Transaction(store):
                store.put(DOC, d("doc", 2))      # v2
                store.put(other, d("x"))         # v1 (created in-tx)
                store.delete(other)              # v2
                raise RuntimeError
        for uri, versions in heard.items():
            assert versions == sorted(versions), (uri, versions)

    def test_version_floor_survives_rollback(self):
        """Floors only ever rise: a rolled-back put may burn version
        numbers, but the next committed write stays above everything any
        watcher could have observed."""
        store, seen = watched_store()
        store.put(DOC, d("doc", 1))
        with pytest.raises(RuntimeError):
            with Transaction(store):
                store.put(DOC, d("doc", 2))  # burns v2 (never notified)
                raise RuntimeError
        store.put(DOC, d("doc", 3))
        versions = [v for _u, _o, _n, v in seen]
        assert versions == sorted(versions)
        assert versions[-1] > 1

"""The documentation's code blocks must run (README.md, docs/*.md).

Mirrors the CI docs job (``tools/run_doc_examples.py``) inside tier-1, so
a doc-breaking change fails the plain test suite too, not only CI.
"""

import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

from run_doc_examples import default_files, run_file  # noqa: E402


@pytest.mark.parametrize("path", default_files(ROOT),
                         ids=lambda p: p.name)
def test_doc_examples_run(path):
    assert path.exists(), f"{path} is missing"
    # At least one block per documented file: a fence-regex mismatch must
    # not silently turn the docs check into a no-op.  (run_file raises on
    # a failing block.)
    if path.name in ("README.md", "ARCHITECTURE.md"):
        assert run_file(path) >= 1
    else:
        run_file(path)


def test_docs_are_linked_together():
    """README links the docs; the docs link the benchmarks guide."""
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/BENCHMARKS.md" in readme
    architecture = (ROOT / "docs" / "ARCHITECTURE.md").read_text(encoding="utf-8")
    assert "BENCHMARKS.md" in architecture


def test_quickstart_blocks_exist():
    """At least one runnable quickstart block in the README."""
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    assert readme.count("```python") >= 2

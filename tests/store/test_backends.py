"""Durable-store backends: codec, framing, recovery, compaction, torn tails.

The crash-at-any-point *property* lives in ``test_crash_points.py``; this
file pins the mechanisms it relies on — the commit record codec
round-trip, CRC frame scanning, torn-tail truncation-repair, snapshot
compaction semantics (replay skips compacted records), version-floor
restoration, and the exactly-once replay-notification contract.
"""

import os

import pytest

from repro import d, to_text
from repro.errors import StoreError
from repro.store import (
    BACKENDS,
    DurableResourceStore,
    StoreConfig,
    decode_commit,
    encode_commit,
    open_store,
    register_backend,
)
from repro.store.wal import (
    RECORD_HEADER,
    WalBackend,
    frame_record,
    scan_records,
)
from repro.web.resources import ResourceStore

DOC = "http://a.example/doc"
OTHER = "http://a.example/other"


def wal_config(tmp_path, **kw):
    kw.setdefault("snapshot_every", None)
    return StoreConfig(backend="wal", path=str(tmp_path / "store"), **kw)


def sqlite_config(tmp_path, **kw):
    kw.setdefault("snapshot_every", None)
    return StoreConfig(backend="sqlite", path=str(tmp_path / "store.db"), **kw)


DURABLE_CONFIGS = [wal_config, sqlite_config]


class TestCommitCodec:
    def test_round_trip_put_and_delete(self):
        ops = [
            (DOC, None, d("doc", d("n", 1)), 1),
            (OTHER, d("x"), None, 7),  # delete: new is None
        ]
        seq, decoded = decode_commit(encode_commit(12, ops))
        assert seq == 12
        assert decoded == [(DOC, d("doc", d("n", 1)), 1), (OTHER, None, 7)]

    def test_old_roots_are_not_stored(self):
        text = encode_commit(1, [(DOC, d("huge", *[d("x")] * 50),
                                  d("doc"), 3)])
        assert "huge" not in text  # replay reconstructs old, records don't

    @pytest.mark.parametrize("text", [
        "not-a-term{",
        "other{ seq[1] }",
        "commit{ }",                       # no seq
        'commit{ seq["one"] }',            # non-integer seq
        "commit{ seq[1], op{ uri[2], version[1] } }",   # non-string uri
        'commit{ seq[1], op{ uri["u"] } }',             # no version
    ])
    def test_malformed_records_raise_store_error(self, text):
        with pytest.raises(StoreError):
            decode_commit(text)


class TestRecordFraming:
    def test_frame_and_scan_round_trip(self):
        stream = b"".join(frame_record(p) for p in (b"a", b"bb", b"ccc"))
        payloads, end, problem = scan_records(stream)
        assert payloads == [b"a", b"bb", b"ccc"]
        assert end == len(stream) and problem is None

    def test_crc_catches_bit_rot(self):
        stream = bytearray(frame_record(b"hello") + frame_record(b"world"))
        stream[RECORD_HEADER.size] ^= 0x40  # flip a payload bit of record 1
        payloads, end, problem = scan_records(bytes(stream))
        assert payloads == [] and end == 0 and problem == "crc-mismatch"

    @pytest.mark.parametrize("cut,expected", [
        (2, "truncated-header"),     # mid-header
        (RECORD_HEADER.size + 1, "truncated-payload"),   # mid-payload
    ])
    def test_torn_tail_is_detected_not_raised(self, cut, expected):
        whole = frame_record(b"first")
        stream = whole + frame_record(b"second-record")[:cut]
        payloads, end, problem = scan_records(stream)
        assert payloads == [b"first"]
        assert end == len(whole)
        assert problem == expected

    def test_oversized_length_is_rejected(self):
        bogus = RECORD_HEADER.pack(1 << 30, 0)
        payloads, end, problem = scan_records(bogus)
        assert payloads == [] and problem == "oversized-length"
        with pytest.raises(StoreError):
            frame_record(b"x" * ((1 << 28) + 1))


@pytest.mark.parametrize("make_config", DURABLE_CONFIGS)
class TestRecovery:
    def test_committed_state_survives_reopen(self, tmp_path, make_config):
        config = make_config(tmp_path)
        store = open_store(config)
        store.put(DOC, d("doc", d("n", 1)))
        store.put(OTHER, d("x", "payload"))
        store.delete(OTHER)
        store.close()

        reopened = open_store(config)
        assert reopened.get(DOC) == d("doc", d("n", 1))
        assert OTHER not in reopened
        assert reopened.version(DOC) == 1
        reopened.close()

    def test_version_floors_survive_restart(self, tmp_path, make_config):
        """The heart of monotonic change detection: a delete's announced
        version must still floor a put made *after* a restart."""
        config = make_config(tmp_path)
        store = open_store(config)
        store.put(DOC, d("doc", 1))   # v1
        store.put(DOC, d("doc", 2))   # v2
        store.delete(DOC)             # announces v3; floor = 3
        store.close()

        reopened = open_store(config)
        seen = []
        reopened.watch(lambda _u, _o, _n, v: seen.append(v))
        reopened.deliver_replayed()
        document = reopened.put(DOC, d("doc", 3))
        assert document.version == 4  # continues past the deleted floor
        assert seen == sorted(seen)
        reopened.close()

    def test_replay_notifications_are_exactly_once(self, tmp_path,
                                                   make_config):
        config = make_config(tmp_path)
        store = open_store(config)
        store.put(DOC, d("doc", 1))
        store.put(DOC, d("doc", 2))
        store.close()

        reopened = open_store(config)
        heard = []
        reopened.watch(lambda *op: heard.append(op))
        assert reopened.replay_pending == 2
        assert reopened.deliver_replayed() == 2
        # Replay reconstructs the old roots record-by-record, so the
        # notifications match the original delivery bit for bit.
        assert heard == [
            (DOC, None, d("doc", 1), 1),
            (DOC, d("doc", 1), d("doc", 2), 2),
        ]
        assert reopened.deliver_replayed() == 0
        assert len(heard) == 2
        reopened.close()

    def test_transaction_is_one_commit(self, tmp_path, make_config):
        from repro.updates import Transaction

        config = make_config(tmp_path)
        store = open_store(config)
        with Transaction(store):
            store.put(DOC, d("doc", 1))
            store.put(OTHER, d("x"))
        assert store.commits == 1  # group commit: one record, one fsync
        store.close()

        reopened = open_store(config)
        assert reopened.deliver_replayed() == 1  # ...and one replayed unit
        reopened.close()

    def test_rolled_back_transactions_are_never_persisted(self, tmp_path,
                                                          make_config):
        from repro.updates import Transaction

        config = make_config(tmp_path)
        store = open_store(config)
        store.put(DOC, d("doc", 1))
        with pytest.raises(RuntimeError):
            with Transaction(store):
                store.put(DOC, d("doc", 99))
                raise RuntimeError
        assert store.commits == 1
        store.close()

        reopened = open_store(config)
        assert reopened.get(DOC) == d("doc", 1)
        reopened.close()

    def test_checkpoint_compacts_and_silences_replay(self, tmp_path,
                                                     make_config):
        config = make_config(tmp_path)
        store = open_store(config)
        store.put(DOC, d("doc", 1))
        store.delete(DOC)
        store.put(DOC, d("doc", 2))
        store.checkpoint()
        store.put(OTHER, d("x"))   # the only post-snapshot commit
        store.close()

        reopened = open_store(config)
        assert reopened.get(DOC) == d("doc", 2)
        assert reopened.version(DOC) == 3   # floor through the snapshot
        assert reopened.replay_pending == 1  # compacted commits don't replay
        assert reopened.deliver_replayed() == 1
        reopened.close()

    def test_automatic_checkpoint_cadence(self, tmp_path, make_config):
        config = make_config(tmp_path, snapshot_every=2)
        store = open_store(config)
        for i in range(5):
            store.put(DOC, d("doc", i))
        store.close()

        reopened = open_store(config)
        # 5 commits, checkpoints after #2 and #4: one commit replays.
        assert reopened.replay_pending == 1
        assert reopened.get(DOC) == d("doc", 4)
        reopened.close()

    def test_mutating_a_closed_store_fails_loudly(self, tmp_path,
                                                  make_config):
        store = open_store(make_config(tmp_path))
        store.close()
        store.close()  # idempotent
        with pytest.raises(StoreError):
            store.put(DOC, d("doc", 1))


class TestWalTornTail:
    def put_some(self, config, n=3):
        store = open_store(config)
        for i in range(n):
            store.put(DOC, d("doc", i))
        store.close()
        return os.path.join(config.path, WalBackend.WAL_FILE)

    def test_torn_tail_is_truncated_and_earlier_commits_replay(
            self, tmp_path):
        config = wal_config(tmp_path)
        wal_path = self.put_some(config, 3)
        size = os.path.getsize(wal_path)
        with open(wal_path, "r+b") as fh:   # tear the last record in half
            fh.truncate(size - 5)

        reopened = open_store(config)
        assert reopened.get(DOC) == d("doc", 1)  # last full commit
        assert reopened.replay_pending == 2
        # The tail was repaired: the file ends at the last valid record.
        assert os.path.getsize(wal_path) < size - 5
        reopened.put(DOC, d("doc", 9))           # appends cleanly after
        reopened.close()
        final = open_store(config)
        assert final.get(DOC) == d("doc", 9)
        final.close()

    def test_garbage_tail_is_discarded(self, tmp_path):
        config = wal_config(tmp_path)
        wal_path = self.put_some(config, 2)
        with open(wal_path, "ab") as fh:
            fh.write(b"\xde\xad\xbe\xef garbage")
        reopened = open_store(config)
        assert reopened.get(DOC) == d("doc", 1)
        assert reopened.replay_pending == 2
        reopened.close()

    def test_checksummed_but_undecodable_record_stops_replay(self, tmp_path):
        config = wal_config(tmp_path)
        wal_path = self.put_some(config, 1)
        with open(wal_path, "ab") as fh:   # valid CRC, not a commit record
            fh.write(frame_record(b"nonsense{ }"))
        reopened = open_store(config)
        assert reopened.replay_pending == 1  # only the real commit
        reopened.close()

    def test_orphan_snapshot_tmp_is_cleaned_up(self, tmp_path):
        config = wal_config(tmp_path)
        self.put_some(config, 2)
        tmp = os.path.join(config.path, WalBackend.SNAPSHOT_FILE + ".tmp")
        with open(tmp, "wb") as fh:   # a compaction that died pre-rename
            fh.write(b"half a snapshot")
        reopened = open_store(config)
        assert not os.path.exists(tmp)
        assert reopened.get(DOC) == d("doc", 1)
        reopened.close()

    def test_corrupt_snapshot_refuses_loudly(self, tmp_path):
        config = wal_config(tmp_path)
        store = open_store(config)
        store.put(DOC, d("doc", 1))
        store.checkpoint()
        store.close()
        snap = os.path.join(config.path, WalBackend.SNAPSHOT_FILE)
        with open(snap, "r+b") as fh:
            fh.truncate(os.path.getsize(snap) - 3)
        # The snapshot is written atomically; a torn one is storage
        # corruption — silent data loss would be worse than the error.
        with pytest.raises(StoreError):
            open_store(config)


class TestConfigAndRegistry:
    def test_memory_default_is_plain_resource_store(self):
        store = open_store(StoreConfig())
        assert type(store) is ResourceStore
        assert open_store(None).deliver_replayed() == 0

    def test_unknown_backend_rejected(self):
        with pytest.raises(StoreError, match="unknown store backend"):
            StoreConfig(backend="papyrus")

    def test_durable_backends_require_a_path(self):
        with pytest.raises(StoreError, match="needs a path"):
            StoreConfig(backend="wal")

    def test_bad_snapshot_cadence_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="snapshot_every"):
            StoreConfig(backend="wal", path=str(tmp_path),
                        snapshot_every=0)

    def test_register_backend_round_trip(self):
        sentinel = ResourceStore()
        register_backend("unit-test", lambda config: sentinel)
        try:
            assert open_store(StoreConfig(backend="unit-test")) is sentinel
        finally:
            del BACKENDS["unit-test"]

    def test_durable_store_reports_backend(self, tmp_path):
        store = open_store(wal_config(tmp_path))
        assert isinstance(store, DurableResourceStore)
        assert store.backend_name == "wal"
        store.close()


class TestFsyncAblation:
    def test_nofsync_wal_still_recovers_after_clean_close(self, tmp_path):
        config = wal_config(tmp_path, fsync=False)
        store = open_store(config)
        store.put(DOC, d("doc", 1))
        store.close()
        reopened = open_store(config)
        assert reopened.get(DOC) == d("doc", 1)
        reopened.close()

    def test_serialisation_survives_arbitrary_bodies(self, tmp_path):
        """Anything the term codec round-trips persists unchanged."""
        body = d("doc", d("text", 'tricky "quotes" \\ and, braces{'),
                 d("n", -12), d("f", 3.5), d("nested", d("deep", d("x"))))
        assert to_text(body)  # serialisable precondition
        config = wal_config(tmp_path)
        store = open_store(config)
        store.put(DOC, body)
        store.close()
        reopened = open_store(config)
        assert reopened.get(DOC) == body
        reopened.close()

"""The crash-at-any-point recovery property, enumerated and fuzzed.

``crash_outcomes`` runs a fixed workload once to learn its fault points,
then for every ``(crash point, tear mode)`` pair: runs it on a fresh
target, injects the crash, reopens the store, and checks that the
recovered state equals the state after *k* committed steps for some
``acked <= k <= acked + 1`` — floors included, replay notifications
exactly-once.  The hypothesis test does the same over *random* op
sequences, which is what makes this a property rather than a handful of
anecdotes.
"""

import os
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import d
from repro.store import StoreConfig, open_store
from repro.store.fault import TEARS, FaultPlan, SimulatedCrash, crash_outcomes
from repro.updates import Transaction

URIS = ["http://a.example/x", "http://a.example/y", "http://a.example/z"]


def wal_opener(snapshot_every=None, fsync=True):
    def open_wal(target, plan):
        return open_store(StoreConfig(
            backend="wal", path=os.path.join(target, "store"),
            fsync=fsync, snapshot_every=snapshot_every, fault=plan))
    return open_wal


def sqlite_opener(snapshot_every=None):
    def open_sqlite(target, plan):
        return open_store(StoreConfig(
            backend="sqlite", path=os.path.join(target, "store.db"),
            snapshot_every=snapshot_every, fault=plan))
    return open_sqlite


def make_target_factory(tmp_path):
    os.makedirs(tmp_path, exist_ok=True)

    def make_target():
        return tempfile.mkdtemp(prefix="run-", dir=str(tmp_path))
    return make_target


def put(uri, n):
    return lambda store: store.put(uri, d("doc", d("n", n)))


def delete(uri):
    return lambda store: store.delete(uri)


def tx(*mutations):
    def step(store):
        with Transaction(store):
            for mutation in mutations:
                mutation(store)
    return step


WORKLOAD = [
    put(URIS[0], 1),
    put(URIS[1], 2),
    tx(put(URIS[0], 3), put(URIS[2], 4)),   # a multi-op group commit
    delete(URIS[1]),
    put(URIS[1], 5),                        # recreate over the floor
]


class TestEnumeratedCrashes:
    def test_wal_every_point_every_tear(self, tmp_path):
        checked = 0
        for outcome in crash_outcomes(make_target_factory(tmp_path),
                                      wal_opener(), WORKLOAD):
            outcome.check()
            checked += 1
        assert checked > 3 * len(WORKLOAD)  # the enumeration really ran

    def test_wal_with_compaction_in_the_window(self, tmp_path):
        """snapshot_every=2 puts checkpoints (snapshot write, swap rename,
        log truncate) inside the crash window — the orchestration the
        WAL's write ordering exists for."""
        names = set()
        for outcome in crash_outcomes(make_target_factory(tmp_path),
                                      wal_opener(snapshot_every=2),
                                      WORKLOAD):
            outcome.check()
            names.add(outcome.point_name)
        assert {"write", "fsync", "fsync-return",
                "snapshot-swap", "truncate"} <= names

    def test_sqlite_every_point(self, tmp_path):
        for outcome in crash_outcomes(make_target_factory(tmp_path),
                                      sqlite_opener(snapshot_every=2),
                                      WORKLOAD, tears=("none",)):
            outcome.check()

    def test_acked_commits_survive_fsync_crashes(self, tmp_path):
        """Stronger than check(): any commit whose mutation call *returned*
        is durable under every tear mode — that is what fsync buys."""
        for outcome in crash_outcomes(make_target_factory(tmp_path),
                                      wal_opener(), WORKLOAD):
            outcome.check()
            assert outcome.matched >= outcome.acked_steps


class TestFaultPlanMechanics:
    def test_counting_mode_records_points(self, tmp_path):
        plan = FaultPlan()
        store = wal_opener()(str(tmp_path), plan)
        store.put(URIS[0], d("doc"))
        store.close()
        assert plan.points[:2] == ["write", "fsync"]
        assert not plan.crashed

    def test_crash_is_sticky(self, tmp_path):
        plan = FaultPlan(crash_at=0)
        store = wal_opener()(str(tmp_path), plan)
        with pytest.raises(SimulatedCrash):
            store.put(URIS[0], d("doc"))
        # The "dead process" must not quietly do more I/O.
        with pytest.raises(SimulatedCrash):
            plan.point("anything")

    def test_unknown_tear_mode_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_at=0, tear="shred")

    @pytest.mark.parametrize("tear", TEARS)
    def test_torn_unsynced_bytes_follow_the_mode(self, tmp_path, tear):
        plan = FaultPlan(crash_at=3, tear=tear)  # second commit's "write"
        store = wal_opener()(str(tmp_path), plan)
        store.put(URIS[0], d("doc", d("n", 1)))
        with pytest.raises(SimulatedCrash):
            store.put(URIS[0], d("doc", d("n", 2)))
        wal = os.path.join(str(tmp_path), "store", "store.wal")
        assert os.path.getsize(wal) > 0  # commit 1 is durable
        recovered = wal_opener()(str(tmp_path), None)
        assert recovered.get(URIS[0]) == d("doc", d("n", 1))
        recovered.close()


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(URIS),
                  st.integers(min_value=0, max_value=99)),
        st.tuples(st.just("delete"), st.sampled_from(URIS)),
        st.tuples(st.just("tx"), st.sampled_from(URIS),
                  st.sampled_from(URIS), st.integers(0, 99)),
        st.tuples(st.just("rollback"), st.sampled_from(URIS),
                  st.integers(0, 99)),
    ),
    min_size=1, max_size=6,
)


def compile_steps(ops):
    steps = []
    for op in ops:
        if op[0] == "put":
            steps.append(put(op[1], op[2]))
        elif op[0] == "delete":
            uri = op[1]

            def safe_delete(store, uri=uri):
                if uri in store:
                    store.delete(uri)
            steps.append(safe_delete)
        elif op[0] == "tx":
            steps.append(tx(put(op[1], op[3]), put(op[2], op[3] + 1)))
        else:   # a rolled-back transaction: commits nothing, burns versions
            uri, n = op[1], op[2]

            def rolled_back(store, uri=uri, n=n):
                try:
                    with Transaction(store):
                        store.put(uri, d("doc", d("n", n)))
                        raise _Abort
                except _Abort:
                    pass
            steps.append(rolled_back)
    return steps


class _Abort(Exception):
    pass


class TestCrashProperty:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(ops=OPS, data=st.data())
    def test_random_workloads_recover_to_a_committed_prefix(
            self, tmp_path, ops, data):
        steps = compile_steps(ops)
        make_target = make_target_factory(
            tmp_path / f"ex-{data.draw(st.integers(0, 10**9))}")
        # A workload that commits nothing (only missing-URI deletes or
        # rollbacks) has zero fault points — the enumeration is rightly
        # empty then, and the property holds vacuously.
        for outcome in crash_outcomes(
                make_target, wal_opener(snapshot_every=3), steps,
                tears=(data.draw(st.sampled_from(TEARS)),)):
            outcome.check()

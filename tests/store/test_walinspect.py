"""The WAL inspection CLI: record dump, CRC status, truncation point."""

import io
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", ".."))

from repro import d
from repro.store import StoreConfig, open_store
from tools.walinspect import inspect, main


def build_store(tmp_path, commits=3):
    config = StoreConfig(backend="wal", path=str(tmp_path / "store"),
                         snapshot_every=None)
    store = open_store(config)
    for i in range(commits):
        store.put("http://a.example/doc", d("doc", d("n", i)))
    store.close()
    return os.path.join(config.path, "store.wal")


class TestInspect:
    def test_clean_wal_reports_every_record(self, tmp_path):
        wal = build_store(tmp_path, commits=3)
        out = io.StringIO()
        assert inspect(wal, out=out) == 0
        report = out.getvalue()
        assert "3 record(s)" in report
        assert "seq=1" in report and "seq=3" in report
        assert "tail: clean" in report

    def test_torn_tail_reports_truncation_point_and_fails(self, tmp_path):
        wal = build_store(tmp_path, commits=2)
        clean_size = os.path.getsize(wal)
        with open(wal, "ab") as fh:
            fh.write(b"\x01\x02\x03")
        out = io.StringIO()
        assert inspect(wal, out=out) == 1
        report = out.getvalue()
        assert "truncated-header" in report
        assert f"ends at byte {clean_size}" in report
        # The tool is read-only: recovery truncates, walinspect reports.
        assert os.path.getsize(wal) == clean_size + 3

    def test_snapshot_mode_decodes_docs_and_floors(self, tmp_path):
        config = StoreConfig(backend="wal", path=str(tmp_path / "store"),
                             snapshot_every=None)
        store = open_store(config)
        store.put("http://a.example/doc", d("doc"))
        store.checkpoint()
        store.close()
        out = io.StringIO()
        snap = os.path.join(config.path, "snapshot")
        assert inspect(snap, snapshot=True, verbose=True, out=out) == 0
        report = out.getvalue()
        assert "snapshot seq=1" in report
        assert "doc uri='http://a.example/doc'" in report

    def test_missing_file_is_a_usage_error(self, tmp_path):
        out = io.StringIO()
        assert inspect(str(tmp_path / "nope.wal"), out=out) == 2

    def test_main_round_trip(self, tmp_path, capsys):
        wal = build_store(tmp_path, commits=1)
        assert main([wal]) == 0
        assert "tail: clean" in capsys.readouterr().out

"""Persistence through the facade: ``EngineConfig(store=StoreConfig(...))``.

The node-level contract: a ``ReactiveNode`` configured with a durable
store swaps it in as ``node.resources`` before the engine (or shard
fleet) attaches, a "restarted" node (a fresh Simulation over the same
path) recovers the committed resources and replays their notifications
into newly registered watchers exactly once, and the default
(``store=None`` / ``backend="memory"``) is bit-for-bit the plain
in-memory store.
"""

import pytest

from repro import EngineConfig, Simulation, StoreConfig, parse_data
from repro.errors import RuleError, StoreError
from repro.store import DurableResourceStore
from repro.web.resources import ResourceStore

SHOP = "http://shop.example"
STOCK = f"{SHOP}/stock"
LAST = f"{SHOP}/last"


def wal_engine_config(tmp_path, **engine_kw):
    return EngineConfig(
        store=StoreConfig(backend="wal", path=str(tmp_path / "store"),
                          snapshot_every=None),
        **engine_kw)


class TestFacadeWiring:
    def test_store_config_swaps_the_node_store(self, tmp_path):
        node = Simulation().reactive_node(
            SHOP, config=wal_engine_config(tmp_path))
        assert isinstance(node.node.resources, DurableResourceStore)
        assert node.store is node.node.resources
        node.close()

    def test_memory_and_default_stay_plain(self):
        plain = Simulation().reactive_node(SHOP)
        memory = Simulation().reactive_node(
            SHOP, config=EngineConfig(store=StoreConfig(backend="memory")))
        assert type(plain.node.resources) is ResourceStore
        assert type(memory.node.resources) is ResourceStore
        plain.close()   # close/checkpoint are no-ops, not errors
        memory.checkpoint().close()
        assert plain.deliver_replayed() == 0

    def test_engine_config_validates_the_store_field(self):
        with pytest.raises(RuleError, match="StoreConfig"):
            EngineConfig(store="wal")

    def test_mutation_after_close_is_refused(self, tmp_path):
        node = Simulation().reactive_node(
            SHOP, config=wal_engine_config(tmp_path))
        node.close()
        with pytest.raises(StoreError):
            node.put(STOCK, "stock{}")


class TestRestart:
    def test_rule_written_state_survives_restart(self, tmp_path):
        config = wal_engine_config(tmp_path)
        sim = Simulation()
        shop = sim.reactive_node(SHOP, config=config)
        shop.put(STOCK, 'stock{ item["ball"], n[3] }')
        shop.install('''
            RULE sell
            ON order{{ item[var I] }}
            DO PUT "http://shop.example/last" last{ item[var I] }
        ''')
        client = sim.node("http://c.example")
        client.raise_event(SHOP, parse_data('order{ item["ball"] }'))
        sim.run()
        assert shop.get(LAST).first("item").value == "ball"
        shop.close()

        reopened = Simulation().reactive_node(SHOP, config=config)
        assert reopened.get(STOCK).first("n").value == 3
        assert reopened.get(LAST).first("item").value == "ball"
        reopened.close()

    def test_replay_delivers_to_watchers_exactly_once(self, tmp_path):
        config = wal_engine_config(tmp_path)
        first = Simulation().reactive_node(SHOP, config=config)
        first.put(STOCK, "stock{ n[1] }")
        first.put(STOCK, "stock{ n[2] }")
        first.close()

        reopened = Simulation().reactive_node(SHOP, config=config)
        heard = []
        reopened.store.watch(lambda *op: heard.append(op))
        assert reopened.deliver_replayed() == 2
        assert [op[3] for op in heard] == [1, 2]
        assert reopened.deliver_replayed() == 0
        assert len(heard) == 2
        reopened.close()

    def test_checkpoint_short_circuits_later_recovery(self, tmp_path):
        config = wal_engine_config(tmp_path)
        first = Simulation().reactive_node(SHOP, config=config)
        first.put(STOCK, "stock{ n[1] }")
        first.checkpoint()
        first.close()

        reopened = Simulation().reactive_node(SHOP, config=config)
        assert reopened.deliver_replayed() == 0   # compacted, not replayed
        assert reopened.get(STOCK).first("n").value == 1
        reopened.close()

    def test_version_floors_survive_node_restart(self, tmp_path):
        config = wal_engine_config(tmp_path)
        first = Simulation().reactive_node(SHOP, config=config)
        first.put(STOCK, "stock{ n[1] }")
        first.put(STOCK, "stock{ n[2] }")
        first.delete(STOCK)                 # announces v3
        first.close()

        reopened = Simulation().reactive_node(SHOP, config=config)
        document = reopened.store.put(STOCK, parse_data("stock{ n[9] }"))
        assert document.version == 4        # past the pre-restart floor
        reopened.close()


class TestShardedDurableNode:
    def test_fleet_shares_one_durable_store(self, tmp_path):
        config = wal_engine_config(tmp_path, shards=2)
        sim = Simulation()
        node = sim.reactive_node(SHOP, config=config)
        assert isinstance(node.node.resources, DurableResourceStore)
        node.install('''
            RULE sell
            ON order{{ item[var I] }}
            DO PUT "http://shop.example/last" last{ item[var I] }
        ''')
        node.install('''
            RULE restock
            ON restock{{ item[var I] }}
            DO PUT "http://shop.example/stock" stock{ item[var I] }
        ''')
        client = sim.node("http://c.example")
        client.raise_event(SHOP, parse_data('order{ item["ball"] }'))
        client.raise_event(SHOP, parse_data('restock{ item["cube"] }'))
        sim.run()
        node.close()

        reopened = Simulation().reactive_node(SHOP, config=config)
        assert reopened.get(LAST).first("item").value == "ball"
        assert reopened.get(STOCK).first("item").value == "cube"
        reopened.close()

"""Unit tests for the textual term syntax (parser + serializer)."""

import pytest

from repro.errors import ParseError
from repro.terms import (
    Agg,
    All,
    Compare,
    CTerm,
    Data,
    Desc,
    Fn,
    LabelVar,
    Optional_,
    QTerm,
    RegexMatch,
    Var,
    Without,
    d,
    parse_construct,
    parse_data,
    parse_query,
    to_text,
    u,
)


class TestDataParsing:
    def test_scalars(self):
        assert parse_data('"hi"') == "hi"
        assert parse_data("42") == 42
        assert parse_data("-7") == -7
        assert parse_data("3.25") == 3.25
        assert parse_data("1e3") == 1000.0
        assert parse_data("true") is True
        assert parse_data("false") is False

    def test_string_escapes(self):
        assert parse_data(r'"a\"b\\c\nd"') == 'a"b\\c\nd'

    def test_bad_escape(self):
        with pytest.raises(ParseError):
            parse_data(r'"\q"')

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            parse_data('"abc')

    def test_leaf_element(self):
        assert parse_data("item") == d("item")

    def test_ordered_children(self):
        assert parse_data("r[1, 2]") == d("r", 1, 2)

    def test_unordered_children(self):
        assert parse_data("s{1, 2}") == u("s", 1, 2)

    def test_nesting(self):
        term = parse_data("a[b{c, 1}, 2]")
        assert term == d("a", u("b", d("c"), 1), 2)

    def test_attributes(self):
        term = parse_data('a @{k="v", j="w"} [1]')
        assert term == Data("a", (1,), True, (("j", "w"), ("k", "v")))

    def test_backquoted_label(self):
        assert parse_data("`var`[1]") == d("var", 1)
        assert parse_data("`strange label!`") == d("strange label!")

    def test_comments_ignored(self):
        assert parse_data("a[ # comment\n 1 ]") == d("a", 1)

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_data("a b")

    def test_query_constructs_rejected_in_data(self):
        with pytest.raises(ParseError):
            parse_data("a[var X]")

    def test_error_carries_line(self):
        with pytest.raises(ParseError) as info:
            parse_data("a[\n  %")
        assert "line 2" in str(info.value)


class TestQueryParsing:
    def test_four_brace_modes(self):
        assert parse_query("f[x]") == QTerm("f", (QTerm("x", (), False, False),), True, True)
        assert parse_query("f[[x]]").total is False
        assert parse_query("f{x}") == QTerm("f", (QTerm("x", (), False, False),), False, True)
        assert parse_query("f{{x}}").total is False
        assert parse_query("f{{x}}").ordered is False

    def test_bare_label_is_partial(self):
        query = parse_query("f")
        assert query == QTerm("f", (), False, False)

    def test_var(self):
        assert parse_query("var X") == Var("X")

    def test_restricted_var(self):
        assert parse_query("var X -> f{{}}") == Var("X", QTerm("f", (), False, False))

    def test_desc_without_optional(self):
        assert parse_query("desc f") == Desc(QTerm("f", (), False, False))
        assert parse_query("without f") == Without(QTerm("f", (), False, False))
        assert parse_query("optional var X") == Optional_(Var("X"))
        assert parse_query("optional var X default 0") == Optional_(Var("X"), 0)

    def test_comparisons(self):
        assert parse_query("> 5") == Compare(">", 5)
        assert parse_query(">= 5") == Compare(">=", 5)
        assert parse_query('== "x"') == Compare("==", "x")
        assert parse_query("!= var Y") == Compare("!=", Var("Y"))

    def test_regex(self):
        assert parse_query('re "[a-z]+"') == RegexMatch("[a-z]+")

    def test_wildcard_and_label_var(self):
        assert parse_query("*").label == "*"
        assert parse_query("^L{{}}").label == LabelVar("L")

    def test_attr_with_var(self):
        query = parse_query('a @{k=var V} {{}}')
        assert query.attrs == (("k", Var("V")),)

    def test_nested_double_braces(self):
        query = parse_query("a{{ b{{ var X }} }}")
        inner = query.children[0]
        assert isinstance(inner, QTerm) and inner.total is False

    def test_deep_single_brace_nesting(self):
        # f{g{a}} must not be confused with partial braces.
        query = parse_query("f{g{a}}")
        assert query.total is True
        assert query.children[0].total is True

    def test_empty_partial(self):
        assert parse_query("f{{}}") == QTerm("f", (), False, False)


class TestConstructParsing:
    def test_var(self):
        assert parse_construct("var X") == Var("X")

    def test_structured(self):
        assert parse_construct("out[var X, 1]") == CTerm("out", (Var("X"), 1), True)
        assert parse_construct("out{var X}") == CTerm("out", (Var("X"),), False)

    def test_all(self):
        construct = parse_construct("all item[var X]")
        assert construct == All(CTerm("item", (Var("X"),), True))

    def test_all_with_order(self):
        construct = parse_construct("all item[var X] order by [X, Y]")
        assert construct == All(CTerm("item", (Var("X"),), True), ("X", "Y"))

    def test_aggregations(self):
        assert parse_construct("count(var X)") == Agg("count", "X")
        assert parse_construct("avg(var P)") == Agg("avg", "P")

    def test_functions(self):
        assert parse_construct("add(var X, 1)") == Fn("add", (Var("X"), 1))
        assert parse_construct('concat("a", var B)') == Fn("concat", ("a", Var("B")))

    def test_label_var(self):
        assert parse_construct("^L[1]") == CTerm(Var("L"), (1,), True)

    def test_nested_all_in_term(self):
        construct = parse_construct("out{ all line[var X], count(var X) }")
        assert isinstance(construct.children[0], All)
        assert isinstance(construct.children[1], Agg)


ROUND_TRIP_CASES = [
    d("leaf"),
    d("a", 1, 2.5, True, "text"),
    u("s", d("x"), d("y")),
    d("a", u("b", 1), k="v"),
    Data("var", (1,), True),  # keyword label needs backquoting
    Data("weird label", ()),
    d("neg", -3, -4.5),
    QTerm("f", (Var("X"), Desc(QTerm("g", (), False, False))), False, False),
    QTerm("f", (Compare(">", 3), Without(QTerm("bad", (), False, False))), False, True),
    QTerm(LabelVar("L"), (Optional_(Var("X"), 7),), True, False),
    QTerm("f", (RegexMatch("[0-9]+"),), True, True, (("k", Var("V")),)),
    Var("X", QTerm("g", (), False, False)),
    CTerm("out", (All(CTerm("i", (Var("X"),)), ("X",)), Agg("sum", "Q")), False),
    Fn("add", (Var("X"), Fn("mul", (2, Var("Y"))))),
    CTerm(Var("L"), (1,), True),
]


class TestRoundTrip:
    @pytest.mark.parametrize("term", ROUND_TRIP_CASES, ids=lambda t: to_text(t)[:40])
    def test_round_trip(self, term):
        text = to_text(term)
        if isinstance(term, (Data, int, float, str, bool)):
            parsed = parse_data(text)
        elif isinstance(term, (QTerm, Var, Desc, Without, Optional_, Compare, RegexMatch)):
            parsed = parse_query(text)
        else:
            parsed = parse_construct(text)
        assert parsed == term

    def test_string_with_quotes_and_newlines(self):
        term = d("a", 'say "hi"\nplease\t!')
        assert parse_data(to_text(term)) == term

    def test_float_round_trip(self):
        for value in (0.1, 1e-9, 12345.678, -2.5e10):
            assert parse_data(to_text(d("a", value))) == d("a", value)

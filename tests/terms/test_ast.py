"""Unit tests for the term AST: data terms, bindings, variable analysis."""

import pytest

from repro.errors import QueryError, TermError
from repro.terms import (
    Agg,
    All,
    Bindings,
    Compare,
    CTerm,
    Data,
    Desc,
    Fn,
    LabelVar,
    Optional_,
    QTerm,
    Var,
    Without,
    all_vars,
    canonical_str,
    d,
    free_vars,
    q,
    u,
    values_equal,
)


class TestDataTerm:
    def test_factory_builds_ordered_term(self):
        term = d("book", d("title", "TAPL"), d("year", 2002))
        assert term.label == "book"
        assert term.ordered is True
        assert len(term.children) == 2

    def test_unordered_factory(self):
        term = u("set", 1, 2, 3)
        assert term.ordered is False

    def test_attrs_are_sorted(self):
        term = d("a", lang="en", id="x1")
        assert term.attrs == (("id", "x1"), ("lang", "en"))

    def test_attr_lookup(self):
        term = d("a", lang="en")
        assert term.attr("lang") == "en"
        assert term.attr("missing") is None
        assert term.attr("missing", "dflt") == "dflt"

    def test_empty_label_rejected(self):
        with pytest.raises(TermError):
            Data("")

    def test_non_string_label_rejected(self):
        with pytest.raises(TermError):
            Data(42)  # type: ignore[arg-type]

    def test_invalid_child_rejected(self):
        with pytest.raises(TermError):
            Data("a", (object(),))  # type: ignore[arg-type]

    def test_value_property_single_scalar(self):
        assert d("year", 2002).value == 2002
        assert d("pair", 1, 2).value is None
        assert d("nested", d("x")).value is None

    def test_first_and_all(self):
        term = d("r", d("x", 1), d("y", 2), d("x", 3))
        assert term.first("x").value == 1
        assert term.first("z") is None
        assert [t.value for t in term.all("x")] == [1, 3]

    def test_subterms_preorder(self):
        term = d("a", d("b", d("c")), d("e"))
        labels = [t.label for t in term.subterms()]
        assert labels == ["a", "b", "c", "e"]

    def test_size_counts_scalars(self):
        assert d("a", 1, d("b", 2)).size() == 4

    def test_depth(self):
        assert d("a").depth() == 1
        assert d("a", d("b", d("c"))).depth() == 3

    def test_with_children_replaces(self):
        term = d("a", 1)
        new = term.with_children((2, 3))
        assert new.children == (2, 3)
        assert term.children == (1,)  # original untouched

    def test_with_attr_overrides(self):
        term = d("a", x="1")
        assert term.with_attr("x", "2").attr("x") == "2"

    def test_append(self):
        assert d("a", 1).append(2, 3).children == (1, 2, 3)

    def test_terms_are_hashable(self):
        assert len({d("a", 1), d("a", 1), d("a", 2)}) == 2


class TestCanonicalEquality:
    def test_unordered_children_equal_regardless_of_order(self):
        assert values_equal(u("s", 1, 2), u("s", 2, 1))

    def test_ordered_children_order_matters(self):
        assert not values_equal(d("s", 1, 2), d("s", 2, 1))

    def test_orderedness_itself_matters(self):
        assert not values_equal(d("s", 1), u("s", 1))

    def test_nested_unordered(self):
        left = d("a", u("s", d("x"), d("y")))
        right = d("a", u("s", d("y"), d("x")))
        assert values_equal(left, right)

    def test_scalar_type_distinction(self):
        assert not values_equal(1, True)
        assert not values_equal("1", 1)
        assert values_equal(1, 1.0)

    def test_canonical_str_distinguishes_types(self):
        assert canonical_str(1) != canonical_str("1")
        assert canonical_str(True) != canonical_str(1)

    def test_data_never_equals_scalar(self):
        assert not values_equal(d("a"), "a")


class TestBindings:
    def test_of_and_get(self):
        b = Bindings.of(X=1, Y="a")
        assert b["X"] == 1
        assert b.get("Y") == "a"
        assert b.get("Z") is None

    def test_items_sorted_by_name(self):
        b = Bindings((("Z", 1), ("A", 2)))
        assert [k for k, _ in b.items] == ["A", "Z"]

    def test_contains_and_len(self):
        b = Bindings.of(X=1)
        assert "X" in b
        assert "Y" not in b
        assert len(b) == 1

    def test_getitem_missing_raises(self):
        with pytest.raises(KeyError):
            Bindings()["X"]

    def test_empty_bindings_is_truthy(self):
        assert bool(Bindings()) is True

    def test_bind_new(self):
        b = Bindings().bind("X", 1)
        assert b["X"] == 1

    def test_bind_same_value_is_noop(self):
        b = Bindings.of(X=1)
        assert b.bind("X", 1) is b

    def test_bind_conflict_returns_none(self):
        assert Bindings.of(X=1).bind("X", 2) is None

    def test_bind_respects_semantic_equality(self):
        b = Bindings.of(X=u("s", 1, 2))
        assert b.bind("X", u("s", 2, 1)) is not None

    def test_merge_disjoint(self):
        merged = Bindings.of(X=1).merge(Bindings.of(Y=2))
        assert merged.as_dict() == {"X": 1, "Y": 2}

    def test_merge_conflict(self):
        assert Bindings.of(X=1).merge(Bindings.of(X=2)) is None

    def test_project(self):
        b = Bindings.of(X=1, Y=2, Z=3)
        assert b.project({"X", "Z"}).as_dict() == {"X": 1, "Z": 3}

    def test_names(self):
        assert Bindings.of(X=1, Y=2).names == frozenset({"X", "Y"})

    def test_hashable_and_equal(self):
        assert Bindings.of(X=1, Y=2) == Bindings.of(Y=2, X=1)
        assert len({Bindings.of(X=1), Bindings.of(X=1)}) == 1


class TestQueryValidation:
    def test_without_rejected_in_ordered_total(self):
        with pytest.raises(QueryError):
            QTerm("a", (Without(QTerm("b")),), ordered=True, total=True)

    def test_without_allowed_in_partial(self):
        term = QTerm("a", (Without(QTerm("b")),), ordered=False, total=False)
        assert term.total is False

    def test_bad_comparison_op_rejected(self):
        with pytest.raises(QueryError):
            Compare("~=", 1)

    def test_bad_agg_fn_rejected(self):
        with pytest.raises(TermError):
            Agg("median", "X")

    def test_q_factory_defaults_partial_unordered(self):
        term = q("a")
        assert term.ordered is False and term.total is False


class TestVariableAnalysis:
    def test_free_vars_of_var(self):
        assert free_vars(Var("X")) == {"X"}

    def test_free_vars_restricted_var(self):
        assert free_vars(Var("X", q("a", Var("Y")))) == {"X", "Y"}

    def test_free_vars_skip_negated(self):
        query = q("a", Var("X"), Without(q("b", Var("N"))))
        assert free_vars(query) == {"X"}
        assert all_vars(query) == {"X", "N"}

    def test_label_var_is_free(self):
        assert free_vars(QTerm(LabelVar("L"))) == {"L"}

    def test_attr_var_is_free(self):
        term = QTerm("a", (), attrs=(("k", Var("V")),))
        assert free_vars(term) == {"V"}

    def test_compare_var_is_free(self):
        assert free_vars(Compare(">", Var("X"))) == {"X"}

    def test_desc_and_optional_traversed(self):
        assert free_vars(Desc(Var("X"))) == {"X"}
        assert free_vars(Optional_(Var("X"))) == {"X"}

    def test_construct_vars(self):
        construct = CTerm("out", (All(CTerm("i", (Var("X"),)), order_by=("Y",)),
                                  Agg("count", "Z"), Fn("add", (Var("W"), 1))))
        assert free_vars(construct) == {"X", "Y", "Z", "W"}

    def test_ground_terms_have_no_vars(self):
        assert free_vars(d("a", 1)) == frozenset()
        assert free_vars("lit") == frozenset()

"""Unit tests for the RDF graph, pattern queries, and RDFS inference."""

import pytest

from repro.errors import TermError
from repro.terms import Bindings, Var, d, matches, parse_query
from repro.terms.rdf import (
    Graph,
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASS,
    RDFS_SUBPROPERTY,
    Triple,
)


def small_graph():
    g = Graph()
    g.assert_("ex:fido", RDF_TYPE, "ex:Dog")
    g.assert_("ex:felix", RDF_TYPE, "ex:Cat")
    g.assert_("ex:fido", "ex:name", "Fido")
    g.assert_("ex:fido", "ex:age", 4)
    return g


class TestTriple:
    def test_validation(self):
        with pytest.raises(TermError):
            Triple("", "p", "o")
        with pytest.raises(TermError):
            Triple("s", "", "o")
        with pytest.raises(TermError):
            Triple("s", "p", object())  # type: ignore[arg-type]

    def test_literal_objects_allowed(self):
        assert Triple("s", "p", 42).object == 42
        assert Triple("s", "p", d("blank", 1)).object == d("blank", 1)

    def test_term_round_trip(self):
        triple = Triple("ex:s", "ex:p", 3.5)
        assert Triple.from_term(triple.to_term()) == triple

    def test_from_term_rejects_non_triples(self):
        with pytest.raises(TermError):
            Triple.from_term(d("nottriple", 1, 2, 3))
        with pytest.raises(TermError):
            Triple.from_term(d("triple", 1, 2))


class TestGraphBasics:
    def test_add_and_contains(self):
        g = small_graph()
        assert Triple("ex:fido", RDF_TYPE, "ex:Dog") in g
        assert len(g) == 4

    def test_add_duplicate_returns_false(self):
        g = small_graph()
        assert g.assert_("ex:fido", RDF_TYPE, "ex:Dog") is False
        assert len(g) == 4

    def test_remove(self):
        g = small_graph()
        assert g.remove(Triple("ex:fido", "ex:age", 4)) is True
        assert g.remove(Triple("ex:fido", "ex:age", 4)) is False
        assert len(g) == 3

    def test_copy_is_independent(self):
        g = small_graph()
        h = g.copy()
        h.assert_("ex:new", RDF_TYPE, "ex:Thing")
        assert len(g) == 4 and len(h) == 5

    def test_iteration_order_deterministic(self):
        g = small_graph()
        assert [t.subject for t in g][:2] == ["ex:fido", "ex:felix"]


class TestPatternQueries:
    def test_concrete_lookup(self):
        g = small_graph()
        found = list(g.triples("ex:fido", RDF_TYPE))
        assert [t.object for t in found] == ["ex:Dog"]

    def test_wildcard_predicate(self):
        g = small_graph()
        assert len(list(g.triples("ex:fido"))) == 3

    def test_query_binds_variables(self):
        g = small_graph()
        result = g.query((Var("S"), RDF_TYPE, Var("C")))
        assert {(b["S"], b["C"]) for b in result} == {
            ("ex:fido", "ex:Dog"),
            ("ex:felix", "ex:Cat"),
        }

    def test_query_respects_prebound(self):
        g = small_graph()
        result = g.query((Var("S"), RDF_TYPE, Var("C")), Bindings.of(C="ex:Dog"))
        assert [b["S"] for b in result] == ["ex:fido"]

    def test_query_repeated_var_joins(self):
        g = Graph()
        g.assert_("a", "p", "a")
        g.assert_("a", "p", "b")
        result = g.query((Var("X"), "p", Var("X")))
        assert [b["X"] for b in result] == ["a"]

    def test_conjunctive_query(self):
        g = small_graph()
        result = g.query_all(
            [(Var("S"), RDF_TYPE, "ex:Dog"), (Var("S"), "ex:name", Var("N"))]
        )
        assert result == [Bindings.of(S="ex:fido", N="Fido")]

    def test_conjunctive_query_no_answers(self):
        g = small_graph()
        assert g.query_all([(Var("S"), RDF_TYPE, "ex:Fish")]) == []

    def test_literal_object_match(self):
        g = small_graph()
        assert len(list(g.triples(None, "ex:age", 4))) == 1
        assert len(list(g.triples(None, "ex:age", 5))) == 0


class TestRdfsInference:
    def test_subclass_transitivity(self):
        g = Graph()
        g.assert_("A", RDFS_SUBCLASS, "B")
        g.assert_("B", RDFS_SUBCLASS, "C")
        closed = g.rdfs_closure()
        assert Triple("A", RDFS_SUBCLASS, "C") in closed

    def test_type_propagation(self):
        g = Graph()
        g.assert_("x", RDF_TYPE, "A")
        g.assert_("A", RDFS_SUBCLASS, "B")
        g.assert_("B", RDFS_SUBCLASS, "C")
        closed = g.rdfs_closure()
        assert Triple("x", RDF_TYPE, "B") in closed
        assert Triple("x", RDF_TYPE, "C") in closed

    def test_subproperty_propagation(self):
        g = Graph()
        g.assert_("p", RDFS_SUBPROPERTY, "q")
        g.assert_("a", "p", "b")
        closed = g.rdfs_closure()
        assert Triple("a", "q", "b") in closed

    def test_subproperty_transitivity(self):
        g = Graph()
        g.assert_("p", RDFS_SUBPROPERTY, "q")
        g.assert_("q", RDFS_SUBPROPERTY, "r")
        g.assert_("a", "p", "b")
        closed = g.rdfs_closure()
        assert Triple("a", "r", "b") in closed

    def test_domain_typing(self):
        g = Graph()
        g.assert_("hasTail", RDFS_DOMAIN, "Animal")
        g.assert_("fido", "hasTail", "tail1")
        closed = g.rdfs_closure()
        assert Triple("fido", RDF_TYPE, "Animal") in closed

    def test_range_typing(self):
        g = Graph()
        g.assert_("owns", RDFS_RANGE, "Thing")
        g.assert_("alice", "owns", "ball")
        closed = g.rdfs_closure()
        assert Triple("ball", RDF_TYPE, "Thing") in closed

    def test_range_ignores_literal_objects(self):
        g = Graph()
        g.assert_("age", RDFS_RANGE, "Number")
        g.assert_("alice", "age", 30)
        closed = g.rdfs_closure()
        # Literals never become subjects; the closure simply skips them.
        assert all(isinstance(t.subject, str) for t in closed)
        assert len(closed) == 2

    def test_closure_does_not_mutate_original(self):
        g = Graph()
        g.assert_("A", RDFS_SUBCLASS, "B")
        g.assert_("x", RDF_TYPE, "A")
        g.rdfs_closure()
        assert Triple("x", RDF_TYPE, "B") not in g

    def test_closure_idempotent(self):
        g = Graph()
        g.assert_("A", RDFS_SUBCLASS, "B")
        g.assert_("x", RDF_TYPE, "A")
        once = g.rdfs_closure()
        twice = once.rdfs_closure()
        assert len(once) == len(twice)


class TestTermBridge:
    def test_graph_to_term_and_back(self):
        g = small_graph()
        term = g.to_term()
        assert term.label == "rdf" and not term.ordered
        back = Graph.from_term(term)
        assert set(back._triples) == set(g._triples)

    def test_term_queryable_with_query_language(self):
        # Language coherency (Thesis 7): RDF data matched by term queries.
        term = small_graph().to_term()
        query = parse_query('rdf{{ triple["ex:fido", "ex:name", var N] }}')
        from repro.terms import match

        assert [b["N"] for b in match(query, term)] == ["Fido"]

    def test_from_term_rejects_wrong_label(self):
        with pytest.raises(TermError):
            Graph.from_term(d("notrdf"))

    def test_from_term_rejects_scalar_children(self):
        from repro.terms.ast import Data

        with pytest.raises(TermError):
            Graph.from_term(Data("rdf", (1,), False))

"""Unit tests for construct-term instantiation."""

import pytest

from repro.errors import ConstructError, UnboundVariableError
from repro.terms import (
    Agg,
    All,
    Bindings,
    CTerm,
    Data,
    Fn,
    Var,
    c,
    d,
    instantiate,
    instantiate_all,
    match,
    parse_construct,
    parse_data,
    parse_query,
    register_function,
    to_text,
    u,
)


class TestBasicInstantiation:
    def test_scalar_constructs_itself(self):
        assert instantiate(42, Bindings()) == 42

    def test_ground_data_constructs_itself(self):
        term = d("a", 1)
        assert instantiate(term, Bindings()) is term

    def test_var_substitution(self):
        assert instantiate(Var("X"), Bindings.of(X=7)) == 7

    def test_unbound_var_raises(self):
        with pytest.raises(UnboundVariableError):
            instantiate(Var("X"), Bindings())

    def test_structured_construction(self):
        construct = c("out", c("v", Var("X")))
        built = instantiate(construct, Bindings.of(X=3))
        assert built == d("out", d("v", 3))

    def test_label_variable(self):
        construct = CTerm(Var("L"), (1,))
        assert instantiate(construct, Bindings.of(L="tag")) == d("tag", 1)

    def test_label_variable_non_string_raises(self):
        with pytest.raises(ConstructError):
            instantiate(CTerm(Var("L")), Bindings.of(L=7))

    def test_attr_from_var(self):
        construct = CTerm("a", (), attrs=(("k", Var("V")),))
        assert instantiate(construct, Bindings.of(V="x")).attr("k") == "x"

    def test_unordered_construct(self):
        construct = CTerm("s", (1, 2), ordered=False)
        assert instantiate(construct, Bindings()).ordered is False

    def test_all_outside_group_context_raises(self):
        with pytest.raises(ConstructError):
            instantiate(All(Var("X")), Bindings.of(X=1))

    def test_all_must_be_inside_structured_term(self):
        with pytest.raises(ConstructError):
            instantiate_all(All(Var("X")), [Bindings.of(X=1)])


class TestFunctions:
    def test_arithmetic(self):
        assert instantiate(Fn("add", (1, 2, 3)), Bindings()) == 6
        assert instantiate(Fn("sub", (5, 2)), Bindings()) == 3
        assert instantiate(Fn("mul", (2, 3, 4)), Bindings()) == 24
        assert instantiate(Fn("div", (7, 2)), Bindings()) == 3.5
        assert instantiate(Fn("mod", (7, 2)), Bindings()) == 1

    def test_division_by_zero(self):
        with pytest.raises(ConstructError):
            instantiate(Fn("div", (1, 0)), Bindings())

    def test_string_functions(self):
        assert instantiate(Fn("concat", ("a", 1, "b")), Bindings()) == "a1b"
        assert instantiate(Fn("lower", ("AbC",)), Bindings()) == "abc"
        assert instantiate(Fn("upper", ("abc",)), Bindings()) == "ABC"

    def test_conversions(self):
        assert instantiate(Fn("num", ("42",)), Bindings()) == 42
        assert instantiate(Fn("num", ("4.5",)), Bindings()) == 4.5
        assert instantiate(Fn("str", (42,)), Bindings()) == "42"

    def test_num_bad_input(self):
        with pytest.raises(ConstructError):
            instantiate(Fn("num", ("not a number",)), Bindings())

    def test_nested_function_args(self):
        construct = Fn("add", (Var("X"), Fn("mul", (2, 3))))
        assert instantiate(construct, Bindings.of(X=1)) == 7

    def test_unknown_function(self):
        with pytest.raises(ConstructError):
            instantiate(Fn("frobnicate", ()), Bindings())

    def test_type_error_wrapped(self):
        with pytest.raises(ConstructError):
            instantiate(Fn("add", (d("x"),)), Bindings())

    def test_register_function(self):
        register_function("twice_test_only", lambda v: v * 2)
        assert instantiate(Fn("twice_test_only", (21,)), Bindings()) == 42

    def test_register_duplicate_rejected(self):
        with pytest.raises(ConstructError):
            register_function("add", lambda v: v)


def _alternatives():
    data = parse_data(
        'cart{ item{ name["a"], qty[2] }, item{ name["b"], qty[5] },'
        ' item{ name["a"], qty[1] } }'
    )
    return match(parse_query("cart{{ item{{ name[var N], qty[var Q] }} }}"), data)


class TestGrouping:
    def test_all_expands_per_distinct_binding(self):
        construct = parse_construct("out{ all entry[var N, var Q] order by [N, Q] }")
        built = instantiate_all(construct, _alternatives())
        assert to_text(built) == 'out{entry["a", 1], entry["a", 2], entry["b", 5]}'

    def test_all_groups_by_free_vars_only(self):
        # Grouping on N only: one entry per distinct name.
        construct = parse_construct("out{ all name[var N] order by [N] }")
        built = instantiate_all(construct, _alternatives())
        assert to_text(built) == 'out{name["a"], name["b"]}'

    def test_nested_all_grouping(self):
        # Per name, list its quantities: nested grouping.
        construct = parse_construct(
            "out{ all group{ name[var N], all q[var Q] order by [Q] } order by [N] }"
        )
        built = instantiate_all(construct, _alternatives())
        assert to_text(built) == 'out{group{name["a"], q[1], q[2]}, group{name["b"], q[5]}}'

    def test_empty_alternatives_empty_group(self):
        construct = parse_construct("out{ all entry[var N] }")
        assert to_text(instantiate_all(construct, [])) == "out{}"

    def test_first_seen_order_without_order_by(self):
        construct = parse_construct("out{ all entry[var Q] }")
        built = instantiate_all(construct, _alternatives())
        assert to_text(built) == "out{entry[2], entry[5], entry[1]}"


class TestAggregation:
    def test_count(self):
        built = instantiate_all(parse_construct("s{ count(var Q) }"), _alternatives())
        assert built == u("s", 3)

    def test_sum_avg_min_max(self):
        alts = _alternatives()
        assert instantiate_all(parse_construct("s{ sum(var Q) }"), alts) == u("s", 8)
        assert instantiate_all(parse_construct("s{ min(var Q) }"), alts) == u("s", 1)
        assert instantiate_all(parse_construct("s{ max(var Q) }"), alts) == u("s", 5)
        avg_term = instantiate_all(parse_construct("s{ avg(var Q) }"), alts)
        assert avg_term.value == pytest.approx(8 / 3)

    def test_first_last(self):
        alts = _alternatives()
        assert instantiate_all(parse_construct("s{ first(var Q) }"), alts) == u("s", 2)
        assert instantiate_all(parse_construct("s{ last(var Q) }"), alts) == u("s", 1)

    def test_count_of_empty_is_zero(self):
        assert instantiate_all(parse_construct("s{ count(var Q) }"), []) == u("s", 0)

    def test_sum_of_empty_raises(self):
        with pytest.raises(ConstructError):
            instantiate_all(parse_construct("s{ sum(var Q) }"), [])

    def test_agg_outside_group_context_raises(self):
        with pytest.raises(ConstructError):
            instantiate(Agg("count", "X"), Bindings())

    def test_agg_non_numeric_raises(self):
        alts = [Bindings.of(X=d("t"))]
        with pytest.raises(ConstructError):
            instantiate_all(CTerm("s", (Agg("sum", "X"),)), alts)

    def test_agg_within_all_scopes_to_group(self):
        # Per name, sum of its quantities.
        construct = parse_construct(
            "out{ all line{ name[var N], sum(var Q) } order by [N] }"
        )
        built = instantiate_all(construct, _alternatives())
        assert to_text(built) == 'out{line{name["a"], 3}, line{name["b"], 5}}'


class TestCommonBindings:
    def test_disagreeing_outer_var_treated_unbound(self):
        alts = [Bindings.of(X=1), Bindings.of(X=2)]
        with pytest.raises(UnboundVariableError):
            instantiate_all(CTerm("s", (Var("X"),)), alts)

    def test_agreeing_outer_var_used(self):
        alts = [Bindings.of(X=1, Y=10), Bindings.of(X=1, Y=20)]
        built = instantiate_all(parse_construct("s{ var X, sum(var Y) }"), alts)
        assert built == u("s", 1, 30)

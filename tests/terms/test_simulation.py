"""Unit tests for simulation unification (the matcher)."""

import pytest

from repro.errors import QueryError
from repro.terms import (
    Bindings,
    Compare,
    Data,
    Desc,
    LabelVar,
    Optional_,
    QTerm,
    RegexMatch,
    Var,
    Without,
    compile_matches,
    compile_pattern,
    d,
    match,
    matcher_call_count,
    matches,
    parse_data,
    parse_query,
    q,
    u,
)


def bindings_set(query, data):
    return {b for b in match(query, data)}


class TestScalarAndGroundMatching:
    def test_scalar_equal(self):
        assert matches("abc", "abc")
        assert matches(5, 5)
        assert matches(5, 5.0)

    def test_scalar_unequal(self):
        assert not matches("abc", "abd")
        assert not matches(5, 6)
        assert not matches(True, 1)

    def test_ground_data_term_pattern(self):
        assert matches(d("a", 1), d("a", 1))
        assert not matches(d("a", 1), d("a", 2))

    def test_ground_unordered_pattern_is_order_blind(self):
        assert matches(u("s", 1, 2), u("s", 2, 1))

    def test_scalar_query_against_data_term_fails(self):
        assert not matches("a", d("a"))


class TestVariables:
    def test_var_binds_whole_subterm(self):
        result = match(q("a", Var("X")), u("a", d("b", 1)))
        assert result == [Bindings.of(X=d("b", 1))]

    def test_var_binds_scalar(self):
        result = match(q("a", Var("X")), u("a", 42))
        assert result == [Bindings.of(X=42)]

    def test_repeated_var_must_agree(self):
        query = q("pair", q("l", Var("X")), q("r", Var("X")))
        assert matches(query, u("pair", u("l", 1), u("r", 1)))
        assert not matches(query, u("pair", u("l", 1), u("r", 2)))

    def test_restricted_var(self):
        query = q("a", Var("X", q("b", Var("Y"))))
        result = match(query, u("a", u("b", 7)))
        assert result == [Bindings(((("X"), u("b", 7)), ("Y", 7)))]

    def test_restricted_var_filters(self):
        query = q("a", Var("X", QTerm("b", (), False, False)))
        assert not matches(query, u("a", u("c", 7)))

    def test_prebound_var_acts_as_constant(self):
        query = q("a", Var("X"))
        result = match(query, u("a", 1, 2), Bindings.of(X=2))
        assert result == [Bindings.of(X=2)]

    def test_multiple_answers(self):
        result = bindings_set(q("a", Var("X")), u("a", 1, 2, 3))
        assert result == {Bindings.of(X=1), Bindings.of(X=2), Bindings.of(X=3)}


class TestMatchingModes:
    data = d("r", d("a", 1), d("b", 2), d("c", 3))

    def test_ordered_total_exact(self):
        query = QTerm("r", (q("a", 1), q("b", 2), q("c", 3)), True, True)
        assert matches(query, self.data)

    def test_ordered_total_wrong_order_fails(self):
        query = QTerm("r", (q("b", 2), q("a", 1), q("c", 3)), True, True)
        assert not matches(query, self.data)

    def test_ordered_total_missing_child_fails(self):
        query = QTerm("r", (q("a", 1), q("b", 2)), True, True)
        assert not matches(query, self.data)

    def test_ordered_partial_subsequence(self):
        query = QTerm("r", (q("a", 1), q("c", 3)), True, False)
        assert matches(query, self.data)

    def test_ordered_partial_wrong_order_fails(self):
        query = QTerm("r", (q("c", 3), q("a", 1)), True, False)
        assert not matches(query, self.data)

    def test_unordered_total_bijection(self):
        query = QTerm("r", (q("c", 3), q("a", 1), q("b", 2)), False, True)
        assert matches(query, self.data)

    def test_unordered_total_missing_fails(self):
        query = QTerm("r", (q("c", 3), q("a", 1)), False, True)
        assert not matches(query, self.data)

    def test_unordered_partial_injection(self):
        query = QTerm("r", (q("c", 3), q("a", 1)), False, False)
        assert matches(query, self.data)

    def test_unordered_partial_no_double_consumption(self):
        # Two query children may not both consume the single data child.
        query = QTerm("r", (q("a", Var("X")), q("a", Var("Y"))), False, False)
        assert not matches(query, u("r", u("a", 1)))
        assert matches(query, u("r", u("a", 1), u("a", 2)))

    def test_subsequence_count(self):
        data = parse_data("row[1, 2, 3, 4]")
        result = match(parse_query("row[[ var A, var B ]]"), data)
        assert len(result) == 6  # C(4, 2) order-preserving pairs

    def test_unordered_pair_count(self):
        data = parse_data("bag{1, 2, 3}")
        result = match(parse_query("bag{{ var A, var B }}"), data)
        assert len(result) == 6  # ordered pairs of distinct positions


class TestLabelsAndAttributes:
    def test_wildcard_label(self):
        assert matches(q("*", Var("X")), u("anything", 1))

    def test_label_var_binds(self):
        from repro.terms import LabelVar
        result = match(QTerm(LabelVar("L"), (), False, False), d("book"))
        assert result == [Bindings.of(L="book")]

    def test_attr_exact(self):
        assert matches(QTerm("a", (), False, False, (("k", "v"),)), d("a", k="v"))
        assert not matches(QTerm("a", (), False, False, (("k", "w"),)), d("a", k="v"))

    def test_attr_missing_fails(self):
        assert not matches(QTerm("a", (), False, False, (("k", "v"),)), d("a"))

    def test_attr_var_binds(self):
        result = match(QTerm("a", (), False, False, (("k", Var("V")),)), d("a", k="yes"))
        assert result == [Bindings.of(V="yes")]

    def test_attrs_partial_by_default(self):
        assert matches(QTerm("a", (), False, False, (("k", "v"),)), d("a", k="v", other="x"))


class TestDescendant:
    nested = d("a", d("b", d("c", 42)), d("x", d("c", 7)))

    def test_desc_finds_deep(self):
        result = bindings_set(Desc(q("c", Var("X"))), self.nested)
        assert result == {Bindings.of(X=42), Bindings.of(X=7)}

    def test_desc_matches_self(self):
        assert matches(Desc(q("a")), self.nested)

    def test_desc_scalar_leaf(self):
        assert matches(Desc(42), self.nested)
        assert not matches(Desc(43), self.nested)


class TestNegationAndOptional:
    def test_without_absent_succeeds(self):
        assert matches(parse_query("a{{ without bad }}"), u("a", u("ok")))

    def test_without_present_fails(self):
        assert not matches(parse_query("a{{ without bad }}"), u("a", u("bad")))

    def test_without_checked_against_all_children(self):
        # Even a child consumed by a positive pattern blocks the negation.
        query = q("a", Var("X"), Without(q("bad")))
        assert not matches(query, u("a", u("bad")))

    def test_without_uses_positive_bindings(self):
        # no sibling "dup" with the same payload as X
        query = q("a", q("item", Var("X")), Without(q("dup", Var("X"))))
        assert matches(query, u("a", u("item", 1), u("dup", 2)))
        assert not matches(query, u("a", u("item", 1), u("dup", 1)))

    def test_standalone_without(self):
        assert matches(Without(q("b")), d("a"))
        assert not matches(Without(q("a")), d("a"))

    def test_optional_present_binds(self):
        query = q("a", Optional_(q("opt", Var("X"))))
        assert match(query, u("a", u("opt", 5))) == [Bindings.of(X=5)]

    def test_optional_absent_succeeds_unbound(self):
        query = q("a", Optional_(q("opt", Var("X"))))
        assert match(query, u("a")) == [Bindings()]

    def test_optional_absent_with_default(self):
        query = q("a", Optional_(Var("X"), 0))
        assert match(query, u("a")) == [Bindings.of(X=0)]

    def test_optional_in_ordered_total(self):
        query = QTerm("r", (q("a"), Optional_(q("b")), q("c")), True, True)
        assert matches(query, d("r", d("a"), d("b"), d("c")))
        assert matches(query, d("r", d("a"), d("c")))
        assert not matches(query, d("r", d("a"), d("x"), d("c")))


class TestComparisons:
    def test_numeric_comparisons(self):
        assert matches(q("a", Compare(">", 5)), u("a", 6))
        assert not matches(q("a", Compare(">", 5)), u("a", 5))
        assert matches(q("a", Compare("<=", 5)), u("a", 5))
        assert matches(q("a", Compare("!=", 5)), u("a", 4))

    def test_string_comparisons(self):
        assert matches(q("a", Compare(">", "apple")), u("a", "banana"))

    def test_mixed_types_fail_ordering(self):
        assert not matches(q("a", Compare(">", 5)), u("a", "banana"))

    def test_eq_uses_semantic_equality(self):
        assert matches(q("a", Compare("==", 5)), u("a", 5.0))

    def test_compare_against_bound_var(self):
        query = q("r", q("lo", Var("L")), q("hi", Compare(">", Var("L"))))
        assert matches(query, u("r", u("lo", 1), u("hi", 2)))
        assert not matches(query, u("r", u("lo", 3), u("hi", 2)))

    def test_compare_unbound_var_raises(self):
        with pytest.raises(QueryError):
            match(q("a", Compare(">", Var("Z"))), u("a", 1))

    def test_compare_non_scalar_fails(self):
        assert not matches(q("a", Compare(">", 5)), u("a", u("nested", 6)))

    def test_regex_full_match(self):
        assert matches(q("a", RegexMatch("[0-9]+")), u("a", "123"))
        assert not matches(q("a", RegexMatch("[0-9]+")), u("a", "12a"))
        assert not matches(q("a", RegexMatch("[0-9]+")), u("a", 123))


class TestDeduplication:
    def test_answers_deduplicated(self):
        # both 'a' children produce the same (empty) bindings
        query = q("r", q("a"))
        assert match(query, u("r", u("a"), u("a"))) == [Bindings()]

    def test_first_derivation_order_stable(self):
        query = q("r", q("a", Var("X")))
        values = [b["X"] for b in match(query, d("r", d("a", 1), d("a", 2)))]
        assert values == [1, 2]


class TestPartialityInteraction:
    """Matching modes compose with nesting (regression suite)."""

    doc = parse_data(
        'library{ book{ title["A"], year[1999] }, book{ title["B"], year[2005] },'
        ' journal{ title["J"] } }'
    )

    def test_nested_partial(self):
        result = match(parse_query("library{{ book{{ title[var T] }} }}"), self.doc)
        assert {b["T"] for b in result} == {"A", "B"}

    def test_nested_comparison(self):
        query = parse_query("library{{ book{{ title[var T], year[var Y -> > 2000] }} }}")
        result = match(query, self.doc)
        assert [b["T"] for b in result] == ["B"]

    def test_total_at_inner_level(self):
        # book{title[...]} total: fails because books also have year
        query = parse_query("library{{ book{ title[var T] } }}")
        assert not matches(query, self.doc)

    def test_without_at_outer_level(self):
        assert matches(parse_query("library{{ without magazine }}"), self.doc)
        assert not matches(parse_query("library{{ without journal }}"), self.doc)


class TestCompiledPatterns:
    """compile_pattern must agree with interpreted match, exactly."""

    def compiled_equals_match(self, query, data, bindings=Bindings()):
        compiled = compile_pattern(query)
        assert compiled(data, bindings) == match(query, data, bindings)

    def test_scalar_pattern(self):
        self.compiled_equals_match(7, 7)
        self.compiled_equals_match(7, 7.0)
        self.compiled_equals_match(7, 8)
        self.compiled_equals_match(7, True)
        self.compiled_equals_match("x", d("x"))

    def test_ground_data_pattern(self):
        self.compiled_equals_match(d("a", 1), d("a", 1))
        self.compiled_equals_match(d("a", 1), d("a", 2))
        self.compiled_equals_match(u("a", 1, 2), u("a", 2, 1))

    def test_label_guard_rejects_fast(self):
        compiled = compile_pattern(q("stock", Var("X")))
        assert compiled(d("order", 1)) == []
        assert compiled("scalar") == []

    def test_constant_attr_guard(self):
        pattern = q("stock", Var("P"), sym="ACME")
        self.compiled_equals_match(pattern, d("stock", 10, sym="ACME"))
        self.compiled_equals_match(pattern, d("stock", 10, sym="IBM"))
        self.compiled_equals_match(pattern, d("stock", 10))

    def test_binding_attr_fully_compiled(self):
        pattern = q("stock", sym=Var("S"))
        [b] = compile_pattern(pattern)(d("stock", sym="ACME"))
        assert b["S"] == "ACME"
        # Conflicting pre-binding fails in both forms.
        pre = Bindings.of(S="IBM")
        self.compiled_equals_match(pattern, d("stock", sym="ACME"), pre)

    def test_all_scalar_children_all_modes(self):
        for ordered in (False, True):
            for total in (False, True):
                pattern = QTerm("r", (1, "x", 1), ordered, total)
                for data in (
                    d("r", 1, "x", 1),
                    d("r", 1, 1, "x"),
                    d("r", 1, "x", 1, 2),
                    d("r", 1.0, "x", 1),   # cross-type numeric equality
                    d("r", True, "x", 1),  # bool is not 1 here
                    d("r", 1, "x"),
                    d("r"),
                ):
                    self.compiled_equals_match(pattern, data)

    def test_required_child_value_guard(self):
        pattern = q("stock", q("sym", "ACME"), q("price", Var("P")))
        self.compiled_equals_match(pattern, d("stock", d("sym", "ACME"), d("price", 1)))
        self.compiled_equals_match(pattern, d("stock", d("sym", "IBM"), d("price", 1)))
        self.compiled_equals_match(pattern, d("stock", d("price", 1)))

    def test_compiled_preserves_unbound_comparison_error(self):
        pattern = q("a", Compare(">", Var("X")))
        with pytest.raises(QueryError):
            match(pattern, d("a", 5))
        with pytest.raises(QueryError):
            compile_pattern(pattern)(d("a", 5))

    def test_raise_capable_pattern_keeps_interpreted_semantics(self):
        # Child guards are disabled when a Compare could raise; the label
        # guard still applies and cannot pre-empt the raise (the
        # interpreted walk returns [] before reaching children too).
        pattern = q("a", Compare(">", Var("X")), q("sym", "ACME"))
        assert compile_pattern(pattern)(d("b", 5)) == []

    def test_without_and_optional_children_fall_back(self):
        pattern = q("r", Without(q("bad")), Optional_(q("opt", Var("O"))))
        for data in (d("r"), d("r", d("bad")), d("r", d("opt", 1))):
            self.compiled_equals_match(pattern, data)

    def test_wildcard_and_labelvar_patterns(self):
        self.compiled_equals_match(parse_query("*"), d("anything", 1))
        self.compiled_equals_match(q(LabelVar("L"), q("k", "v")), d("x", d("k", "v")))
        self.compiled_equals_match(q(LabelVar("L"), q("k", "v")), d("x", d("k", "w")))

    def test_compilation_is_memoised(self):
        pattern = q("stock", q("sym", "ACME"))
        assert compile_pattern(pattern) is compile_pattern(q("stock", q("sym", "ACME")))

    def test_matcher_call_count_advances(self):
        before = matcher_call_count()
        match(q("a"), d("a"))
        compile_pattern(q("b"))(d("a"))
        assert matcher_call_count() == before + 2

    def test_cache_distinguishes_bool_from_int_patterns(self):
        # q("a", 1) == q("a", True) under dataclass equality (bool is an
        # int), but matching keeps them distinct — the memo must too.
        int_matcher = compile_pattern(q("a", 1))
        bool_matcher = compile_pattern(q("a", True))
        assert int_matcher(d("a", 1)) and not int_matcher(d("a", True))
        assert bool_matcher(d("a", True)) and not bool_matcher(d("a", 1))
        assert compile_pattern(q("a", 1.0))(d("a", 1))  # 1.0 matches 1

    def test_compile_matches_agrees_with_matches(self):
        for pattern in (
            q("stock", q("sym", "ACME"), Var("X")),
            q("r", Var("X"), Var("Y")),
            parse_query("*"),
            7,
            d("a", 1),
        ):
            for data in (d("stock", d("sym", "ACME"), 1), d("r", 1, 2, 3),
                         d("a", 1), 7):
                assert compile_matches(pattern)(data) == matches(pattern, data)

    def test_compile_matches_preserves_unbound_comparison_error(self):
        with pytest.raises(QueryError):
            compile_matches(q("a", Compare(">", Var("X"))))(d("a", 5))

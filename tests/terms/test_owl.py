"""Unit tests for the OWL-style inference extension."""

from repro.terms.owl import (
    OWL_FUNCTIONAL,
    OWL_INVERSE_OF,
    OWL_SAME_AS,
    OWL_SYMMETRIC,
    OWL_TRANSITIVE,
    functional_conflicts,
    owl_closure,
    semantic_closure,
)
from repro.terms.rdf import Graph, RDF_TYPE, RDFS_SUBCLASS, Triple


class TestSameAs:
    def test_symmetry(self):
        g = Graph()
        g.assert_("a", OWL_SAME_AS, "b")
        closed = owl_closure(g)
        assert Triple("b", OWL_SAME_AS, "a") in closed

    def test_transitivity(self):
        g = Graph()
        g.assert_("a", OWL_SAME_AS, "b")
        g.assert_("b", OWL_SAME_AS, "c")
        closed = owl_closure(g)
        assert Triple("a", OWL_SAME_AS, "c") in closed

    def test_statement_copying_subject(self):
        g = Graph()
        g.assert_("clark", OWL_SAME_AS, "superman")
        g.assert_("clark", "ex:worksAt", "ex:DailyPlanet")
        closed = owl_closure(g)
        assert Triple("superman", "ex:worksAt", "ex:DailyPlanet") in closed

    def test_statement_copying_object(self):
        g = Graph()
        g.assert_("clark", OWL_SAME_AS, "superman")
        g.assert_("lois", "ex:loves", "clark")
        closed = owl_closure(g)
        assert Triple("lois", "ex:loves", "superman") in closed


class TestInverseAndCharacteristics:
    def test_inverse_of(self):
        g = Graph()
        g.assert_("ex:teaches", OWL_INVERSE_OF, "ex:taughtBy")
        g.assert_("ex:kim", "ex:teaches", "ex:logic101")
        closed = owl_closure(g)
        assert Triple("ex:logic101", "ex:taughtBy", "ex:kim") in closed

    def test_inverse_works_both_directions(self):
        g = Graph()
        g.assert_("ex:teaches", OWL_INVERSE_OF, "ex:taughtBy")
        g.assert_("ex:algebra", "ex:taughtBy", "ex:lee")
        closed = owl_closure(g)
        assert Triple("ex:lee", "ex:teaches", "ex:algebra") in closed

    def test_symmetric_property(self):
        g = Graph()
        g.assert_("ex:collaboratesWith", RDF_TYPE, OWL_SYMMETRIC)
        g.assert_("ex:ann", "ex:collaboratesWith", "ex:bo")
        closed = owl_closure(g)
        assert Triple("ex:bo", "ex:collaboratesWith", "ex:ann") in closed

    def test_transitive_property(self):
        g = Graph()
        g.assert_("ex:partOf", RDF_TYPE, OWL_TRANSITIVE)
        g.assert_("ex:wheel", "ex:partOf", "ex:car")
        g.assert_("ex:car", "ex:partOf", "ex:fleet")
        closed = owl_closure(g)
        assert Triple("ex:wheel", "ex:partOf", "ex:fleet") in closed

    def test_closure_idempotent(self):
        g = Graph()
        g.assert_("ex:partOf", RDF_TYPE, OWL_TRANSITIVE)
        g.assert_("a", "ex:partOf", "b")
        g.assert_("b", "ex:partOf", "c")
        once = owl_closure(g)
        assert len(owl_closure(once)) == len(once)


class TestFunctionalProperties:
    def test_conflict_detected(self):
        g = Graph()
        g.assert_("ex:birthYear", RDF_TYPE, OWL_FUNCTIONAL)
        g.assert_("ex:kim", "ex:birthYear", 1980)
        g.assert_("ex:kim", "ex:birthYear", 1985)
        conflicts = functional_conflicts(g)
        assert len(conflicts) == 1
        assert conflicts[0][0] == "ex:kim"

    def test_no_false_positives(self):
        g = Graph()
        g.assert_("ex:birthYear", RDF_TYPE, OWL_FUNCTIONAL)
        g.assert_("ex:kim", "ex:birthYear", 1980)
        g.assert_("ex:lee", "ex:birthYear", 1985)
        assert functional_conflicts(g) == []


class TestSemanticClosure:
    def test_rdfs_and_owl_interact(self):
        # sameAs alias gets a type through RDFS subclassing.
        g = Graph()
        g.assert_("ex:fido", RDF_TYPE, "ex:Dog")
        g.assert_("ex:Dog", RDFS_SUBCLASS, "ex:Animal")
        g.assert_("ex:fido", OWL_SAME_AS, "ex:rex")
        closed = semantic_closure(g)
        assert Triple("ex:rex", RDF_TYPE, "ex:Animal") in closed

"""Tests for the surface rule language: parsing, serialising, round-trips."""

import pytest

from repro.core import (
    Alternative,
    CallProcedure,
    Conditional,
    ECARule,
    Persist,
    PutResource,
    QueryCond,
    Raise,
    RuleSet,
    Sequence,
    Update,
    eca,
)
from repro.core.conditions import AndCond, CompareCond, NotCond, TrueCond
from repro.errors import ParseError
from repro.events.queries import (
    EAggregate,
    EAnd,
    EAtom,
    ECount,
    ENot,
    EOr,
    ESeq,
    EWithin,
)
from repro.lang import parse_program, parse_rule, program_to_text, rule_to_text
from repro.terms import Var, parse_construct, parse_query


class TestEventSyntax:
    def parse_event(self, text):
        return parse_rule(f"RULE r ON {text} DO RAISE TO \"http://x.example\" out{{}}").event

    def test_atom(self):
        event = self.parse_event("order{{ id[var I] }}")
        assert event == EAtom(parse_query("order{{ id[var I] }}"))

    def test_alias(self):
        assert self.parse_event("ping AS var E").alias == "E"

    def test_and_or_then_precedence(self):
        event = self.parse_event("a AND b THEN c OR d")
        # AND binds tighter than THEN, THEN tighter than OR.
        assert isinstance(event, EOr)
        seq = event.members[0]
        assert isinstance(seq, ESeq)
        assert isinstance(seq.members[0], EAnd)

    def test_parentheses_override(self):
        event = self.parse_event("a AND ( b OR c )")
        assert isinstance(event, EAnd)
        assert isinstance(event.members[1], EOr)

    def test_within(self):
        event = self.parse_event("WITHIN 5.0 ( a THEN b )")
        assert isinstance(event, EWithin) and event.window == 5.0

    def test_negation_in_sequence(self):
        event = self.parse_event("WITHIN 2.0 ( cancel{{ f[var F] }} THEN NOT rebook{{ f[var F] }} )")
        assert isinstance(event, EWithin)
        assert isinstance(event.query.members[1], ENot)

    def test_mid_negation(self):
        event = self.parse_event("WITHIN 9.0 ( a THEN NOT n THEN b )")
        assert len(event.query.members) == 3

    def test_count(self):
        event = self.parse_event('COUNT 3 OF outage{{ s[var S] }} WITHIN 60.0 BY [S]')
        assert event == ECount(parse_query("outage{{ s[var S] }}"), 3, 60.0, ("S",))

    def test_aggregate(self):
        event = self.parse_event(
            "AGG avg var P OF stock{{ p[var P] }} LAST 5 INTO var A RISE 5.0"
        )
        assert event == EAggregate(parse_query("stock{{ p[var P] }}"), "P", "avg", "A",
                                   size=5, predicate=("rise%", 5.0))

    def test_aggregate_window_when(self):
        event = self.parse_event(
            "AGG sum var V OF m{{ v[var V] }} WITHIN 10.0 INTO var S WHEN > 100.0"
        )
        assert event.window == 10.0 and event.predicate == (">", 100.0)


class TestConditionSyntax:
    def parse_cond(self, text):
        rule = parse_rule(
            f'RULE r ON go IF {text} DO RAISE TO "http://x.example" out{{}}'
        )
        return rule.branches[0][0]

    def test_in_query(self):
        condition = self.parse_cond('IN "http://s.example/d" : doc{{ ok }}')
        assert condition == QueryCond("http://s.example/d", parse_query("doc{{ ok }}"))

    def test_var_uri(self):
        condition = self.parse_cond("IN var U : doc{{ ok }}")
        assert condition.uri == Var("U")

    def test_comparison(self):
        condition = self.parse_cond("var Q > 0")
        assert isinstance(condition, CompareCond) and condition.op == ">"

    def test_and_not(self):
        condition = self.parse_cond('IN var U : d AND NOT ( var X == 1 )')
        assert isinstance(condition, AndCond)
        assert isinstance(condition.members[1], NotCond)


class TestActionSyntax:
    def parse_action(self, text):
        return parse_rule(f"RULE r ON go DO {text}").action

    def test_raise(self):
        action = self.parse_action('RAISE TO "http://x.example" ping{ var X }')
        assert action == Raise("http://x.example", parse_construct("ping{ var X }"))

    def test_update_forms(self):
        insert = self.parse_action('INSERT item{} INTO "http://s.example/d" AT shop')
        assert insert.kind == "insert"
        delete = self.parse_action('DELETE note FROM "http://s.example/d"')
        assert delete.kind == "delete"
        replace = self.parse_action(
            'REPLACE qty[var Q] IN "http://s.example/d" BY qty[add(var Q, 1)]'
        )
        assert replace.kind == "replace"

    def test_sequence_also_end(self):
        action = self.parse_action(
            'SEQUENCE PUT "http://n.example/a" x{} ALSO PUT "http://n.example/b" y{} END'
        )
        assert isinstance(action, Sequence) and len(action.actions) == 2
        assert action.atomic

    def test_try_elsetry(self):
        action = self.parse_action(
            'TRY DELETE a FROM "http://n.example/d" ELSETRY RAISE TO "http://x.example" fail{} END'
        )
        assert isinstance(action, Alternative) and len(action.actions) == 2

    def test_when_then_else(self):
        action = self.parse_action(
            'WHEN IN "http://n.example/d" : ok THEN PUT "http://n.example/a" y{} '
            'ELSE PUT "http://n.example/a" n{} END'
        )
        assert isinstance(action, Conditional)
        assert action.otherwise is not None

    def test_persist_and_call(self):
        persist = self.parse_action('PERSIST entry{ var X } INTO "http://n.example/log"')
        assert isinstance(persist, Persist)
        call = self.parse_action('CALL notify(WHO = var C, WHAT = "shipped")')
        assert call == CallProcedure(
            "notify", (("WHO", Var("C")), ("WHAT", "shipped"))
        )


class TestRuleAndProgram:
    def test_first_modifier(self):
        rule = parse_rule('RULE r FIRST ON go DO RAISE TO "http://x.example" out{}')
        assert rule.firing == "first"

    def test_multi_branch(self):
        rule = parse_rule('''
            RULE tiered
            ON order{{ total[var T] }}
            IF var T > 100 DO RAISE TO "http://x.example" big{}
            IF var T > 10  DO RAISE TO "http://x.example" mid{}
            ELSE RAISE TO "http://x.example" small{}
        ''')
        assert len(rule.branches) == 2
        assert rule.otherwise is not None

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_rule("RULE r DO RAISE")  # missing ON
        with pytest.raises(ParseError):
            parse_rule("RULE r ON go DO FROBNICATE x")
        with pytest.raises(ParseError):
            parse_rule('RULE r ON go DO RAISE TO "http://x.example" out{} trailing')

    def test_program_with_rulesets_and_procedures(self):
        items = parse_program('''
            PROCEDURE notify(WHO) RAISE TO "http://mail.example" mail{ var WHO }

            RULESET shop
              RULE a ON go DO CALL notify(WHO = "franz")
              RULESET extras
                RULE b ON stop DO CALL notify(WHO = "ida")
              END
            END

            RULE standalone ON ping DO RAISE TO "http://x.example" pong{}
        ''')
        kinds = [type(i).__name__ if not isinstance(i, tuple) else "procedure"
                 for i in items]
        assert kinds == ["procedure", "RuleSet", "ECARule"]
        ruleset = items[1]
        names = [name for name, _, _ in ruleset.qualified()]
        assert names == ["shop/a", "shop/extras/b"]


ROUND_TRIP_RULES = [
    'RULE a ON go DO RAISE TO "http://x.example" out{}',
    '''RULE flight
       ON WITHIN 2.0 ( cancel{{ f[var F] }} THEN NOT rebook{{ f[var F] }} )
       DO RAISE TO "http://agent.example" act{ var F }''',
    '''RULE stock FIRST
       ON AGG avg var P OF stock{{ p[var P] }} LAST 5 INTO var A RISE 5.0
       DO PERSIST note{ var A } INTO "http://n.example/log" ROOT notes''',
    '''RULE seq
       ON ( a AND b ) THEN c OR d
       IF IN "http://n.example/d" : doc{{ q[var Q] }} AND var Q >= 3
       DO SEQUENCE
            REPLACE q[var Q] IN "http://n.example/d" BY q[add(var Q, 1)]
            ALSO TRY DELETE old FROM "http://n.example/d"
                 ELSETRY RAISE TO "http://x.example" warn{}
                 END
          END
       ELSE WHEN TRUE THEN PUT "http://n.example/flag" f{} END''',
    '''RULE counted
       ON COUNT 3 OF outage{{ s[var S] }} WITHIN 60.0 BY [S]
       DO CALL page(WHO = var S)''',
]


class TestRoundTrip:
    @pytest.mark.parametrize("source", ROUND_TRIP_RULES,
                             ids=[f"rule{i}" for i in range(len(ROUND_TRIP_RULES))])
    def test_rule_round_trip(self, source):
        rule = parse_rule(source)
        assert parse_rule(rule_to_text(rule)) == rule

    def test_program_round_trip(self):
        source = '''
            PROCEDURE p(A) RAISE TO "http://m.example" m{ var A }
            RULESET s
              RULE r1 ON go DO CALL p(A = 1)
            END
            RULE r2 ON ping DO RAISE TO "http://x.example" pong{}
        '''
        items = parse_program(source)
        text = program_to_text(items)
        again = parse_program(text)
        assert len(again) == len(items)
        assert again[2] == items[2]
        assert [n for n, _, _ in again[1].qualified()] == \
               [n for n, _, _ in items[1].qualified()]

"""Integration tests: whole-system scenarios from the paper's prose."""

from repro.core import ReactiveEngine, eca
from repro.core.aaa import Accountant, Authenticator, Certificate
from repro.core.actions import InstallRule, PyAction, Raise
from repro.core.meta import rule_to_term
from repro.events.queries import EAtom
from repro.lang import parse_program, parse_rule
from repro.terms import Var, d, parse_construct, parse_data, parse_query, to_text
from repro.web import Simulation


class TestMarketplaceFlow:
    """The running e-shop example: order -> stock check -> ship or reject."""

    def setup_method(self):
        self.sim = Simulation(latency=0.01)
        self.shop = self.sim.node("http://shop.example")
        self.warehouse = self.sim.node("http://warehouse.example")
        self.customer = self.sim.node("http://franz.example")
        self.shop_engine = ReactiveEngine(self.shop)
        self.wh_engine = ReactiveEngine(self.warehouse)
        self.customer_inbox = []
        ReactiveEngine(self.customer).install(eca(
            "inbox", EAtom(parse_query("*"), alias="E"),
            PyAction(lambda n, b: self.customer_inbox.append(b["E"])),
        ))
        self.shop.put("http://shop.example/stock", parse_data(
            'stock{ item{ id["ball"], qty[2] }, item{ id["sock"], qty[0] } }'
        ))
        for item in parse_program('''
            RULE handle-order
            ON order{{ item[var I], customer[var C] }}
            IF IN "http://shop.example/stock" : stock{{ item{{ id[var I], qty[var Q] }} }}
               AND var Q > 0
            DO SEQUENCE
                 REPLACE item{ id[var I], qty[var Q] }
                   IN "http://shop.example/stock"
                   BY item{ id[var I], qty[sub(var Q, 1)] }
                 ALSO RAISE TO "http://warehouse.example" ship{ item[var I], to[var C] }
               END
            ELSE RAISE TO var C rejected{ item[var I] }
        '''):
            self.shop_engine.install(item)
        self.wh_engine.install(parse_rule('''
            RULE confirm
            ON ship{{ item[var I], to[var C] }}
            DO SEQUENCE
                 PERSIST shipment{ item[var I], to[var C] }
                   INTO "http://warehouse.example/log"
                 ALSO RAISE TO var C shipped{ item[var I] }
               END
        '''))

    def order(self, item):
        self.customer.raise_event(
            "http://shop.example",
            parse_data(f'order{{ item["{item}"], customer["http://franz.example"] }}'),
        )
        self.sim.run()

    def test_successful_order_ships_and_decrements(self):
        self.order("ball")
        stock = self.shop.get("http://shop.example/stock")
        ball = [i for i in stock.all("item") if i.first("id").value == "ball"][0]
        assert ball.first("qty").value == 1
        assert [t.label for t in self.customer_inbox] == ["shipped"]
        log = self.warehouse.get("http://warehouse.example/log")
        assert len(log.all("shipment")) == 1

    def test_out_of_stock_rejected(self):
        self.order("sock")
        assert [t.label for t in self.customer_inbox] == ["rejected"]

    def test_stock_drains(self):
        self.order("ball")
        self.order("ball")
        self.order("ball")
        labels = [t.label for t in self.customer_inbox]
        assert labels == ["shipped", "shipped", "rejected"]


class TestTrustNegotiation:
    """Thesis 11's scenario: reactive, meta-circular policy exchange."""

    def test_negotiation_reaches_deal(self):
        sim = Simulation(latency=0.01)
        shop = sim.node("http://fussbaelle.biz")
        franz = sim.node("http://franz.example")
        shop_engine = ReactiveEngine(shop)
        franz_engine = ReactiveEngine(franz)
        transcript = []

        # Step 2: on a purchase request, the shop sends its payment policy —
        # a RULE, as data — instead of demanding the card up front.
        shop_policy = eca(
            "payment-policy",
            EAtom(parse_query("payment-offer{{ method[\"credit-card\"] }}")),
            Raise("http://fussbaelle.biz", parse_construct(
                "payment-accepted{ method[\"credit-card\"] }")),
        )
        shop_engine.install(eca(
            "on-purchase-request",
            EAtom(parse_query("purchase-request{{ customer[var C] }}")),
            Raise(Var("C"), rule_to_term(shop_policy)),
        ))

        # Step 3: Franz installs received policies (meta-circularity), then
        # answers with his own condition: he pays by card only against a
        # certificate from the Better Business Bureau.
        franz_engine.install(eca(
            "install-received-policy",
            EAtom(parse_query("eca-rule"), alias="R"),
            InstallRule(Var("R")),
        ))
        franz_engine.install(eca(
            "ask-for-certificate",
            EAtom(parse_query("eca-rule")),
            Raise("http://fussbaelle.biz", parse_construct(
                'certificate-request{ customer["http://franz.example"] }')),
        ))

        # Step 4: the shop answers certificate requests with its membership
        # certificate.
        certificate = Certificate("fussbaelle.biz", "http://bbb.example").to_term()
        shop_engine.install(eca(
            "send-certificate",
            EAtom(parse_query("certificate-request{{ customer[var C] }}")),
            Raise(Var("C"), certificate),
        ))

        # Step 5: Franz verifies the certificate and then offers payment —
        # to HIS OWN node: the shop's policy rule, received as data and
        # installed locally (meta-circularity), evaluates the offer on
        # Franz's side and answers the shop with the acceptance.
        authenticator = Authenticator()
        authenticator.trust_authority("http://bbb.example")

        def verify_and_pay(node, bindings):
            subject = authenticator.authenticate_certificate(
                Certificate.from_term(bindings["CERT"])
            )
            transcript.append(("verified", subject))
            node.raise_event(node.uri,
                             parse_data('payment-offer{ method["credit-card"] }'))

        franz_engine.install(eca(
            "verify-certificate",
            EAtom(parse_query("certificate"), alias="CERT"),
            PyAction(verify_and_pay),
        ))
        shop_engine.install(eca(
            "close-deal",
            EAtom(parse_query("payment-accepted{{}}")),
            PyAction(lambda n, b: transcript.append(("deal", n.now))),
        ))

        franz.raise_event("http://fussbaelle.biz", parse_data(
            'purchase-request{ customer["http://franz.example"], item["soccer-ball"], qty[10] }'
        ))
        sim.run()

        assert ("verified", "fussbaelle.biz") in transcript
        assert any(step[0] == "deal" for step in transcript)
        # The policy rule travelled as data and was installed on Franz's node.
        assert "payment-policy" in franz_engine.rules()


class TestAccountedService:
    """Thesis 12: an accounted, authenticated service end to end."""

    def test_metered_requests_produce_bill(self):
        sim = Simulation(latency=0.0)
        server = sim.node("http://api.example")
        engine = ReactiveEngine(server)
        accountant = Accountant(engine)
        accountant.attach()
        engine.install(parse_rule('''
            RULE serve
            ON request{{ principal[var P], size[var S] }}
            DO PERSIST served{ var P } INTO "http://api.example/responses"
        '''))
        engine.install(eca(
            "meter",
            EAtom(parse_query("request{{ principal[var P], size[var S] }}")),
            PyAction(lambda n, b: accountant.meter(b["P"], "request", float(b["S"]))),
        ))
        for principal, size in [("franz", 2), ("ida", 1), ("franz", 3)]:
            server.raise_event(server.uri, parse_data(
                f'request{{ principal["{principal}"], size[{size}] }}'
            ))
        sim.run()
        assert accountant.bill() == {"franz": 5.0, "ida": 1.0}
        # Accounting never interfered with the service itself.
        responses = server.get("http://api.example/responses")
        assert len(responses.all("served")) == 3


class TestFlightMonitor:
    """Thesis 5's motivating example, end to end over the network."""

    def test_unrebooked_cancellation_alerts(self):
        sim = Simulation(latency=0.0)
        airline = sim.node("http://airline.example")
        agent = sim.node("http://agent.example")
        engine = ReactiveEngine(agent)
        alerts = []
        engine.install(parse_rule('''
            RULE stranded
            ON WITHIN 2.0 ( cancellation{{ flight[var F] }}
                            THEN NOT rebooking{{ flight[var F] }} )
            DO PERSIST alert{ var F } INTO "http://agent.example/alerts"
        '''))
        engine.install(eca(
            "observe", EAtom(parse_query("alert")),
            PyAction(lambda n, b: alerts.append(n.now)),
        ))
        airline.raise_event("http://agent.example",
                            parse_data('cancellation{ flight["LH07"] }'))
        sim.scheduler.at(0.5, lambda: airline.raise_event(
            "http://agent.example", parse_data('cancellation{ flight["LH99"] }')))
        sim.scheduler.at(1.0, lambda: airline.raise_event(
            "http://agent.example", parse_data('rebooking{ flight["LH07"] }')))
        sim.run()
        stored = agent.get("http://agent.example/alerts")
        flights = [a.children[0] for a in stored.all("alert")]
        assert flights == ["LH99"]  # LH07 was rebooked in time

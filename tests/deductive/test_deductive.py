"""Unit tests for deductive rules: analysis, forward and backward chaining."""

import pytest

from repro.deductive import (
    BackwardEvaluator,
    DeductiveRule,
    Filter,
    Match,
    Negation,
    Program,
    TermBase,
    forward_chain,
)
from repro.errors import DeductiveError, RecursionRejected
from repro.terms import Bindings, Var, c, d, parse_construct, parse_data, parse_query, q, u


def edge(a, b):
    return d("edge", d("src", a), d("dst", b))


def edge_base():
    return TermBase([edge("a", "b"), edge("b", "c"), edge("c", "d")])


PATH_RULES = [
    DeductiveRule(
        c("path", c("src", Var("X")), c("dst", Var("Y"))),
        (Match(parse_query("edge{{ src[var X], dst[var Y] }}")),),
        name="base",
    ),
    DeductiveRule(
        c("path", c("src", Var("X")), c("dst", Var("Z"))),
        (
            Match(parse_query("edge{{ src[var X], dst[var Y] }}")),
            Match(parse_query("path{{ src[var Y], dst[var Z] }}")),
        ),
        name="step",
    ),
]


class TestTermBase:
    def test_add_and_contains(self):
        base = edge_base()
        assert edge("a", "b") in base
        assert len(base) == 3

    def test_semantic_deduplication(self):
        base = TermBase()
        assert base.add(u("f", 1, 2)) is True
        assert base.add(u("f", 2, 1)) is False  # unordered: same fact

    def test_remove(self):
        base = edge_base()
        assert base.remove(edge("a", "b")) is True
        assert base.remove(edge("a", "b")) is False
        assert len(base) == 2

    def test_with_label(self):
        base = edge_base()
        base.add(d("node", "a"))
        assert len(base.with_label("edge")) == 3
        assert len(base.with_label("node")) == 1
        assert len(base.with_label("*")) == 4

    def test_solve_uses_label_index(self):
        base = edge_base()
        result = base.solve(parse_query("edge{{ src[var X] }}"))
        assert {b["X"] for b in result} == {"a", "b", "c"}

    def test_from_document(self):
        doc = parse_data("root{ item{1}, item{2}, 5 }")
        base = TermBase.from_document(doc)
        assert len(base) == 2  # the scalar child is not a fact

    def test_copy_independent(self):
        base = edge_base()
        other = base.copy()
        other.add(edge("x", "y"))
        assert len(base) == 3 and len(other) == 4


class TestRuleValidation:
    def test_unsafe_head_rejected(self):
        with pytest.raises(DeductiveError):
            DeductiveRule(c("out", Var("X")), (Match(q("a", Var("Y"))),))

    def test_unsafe_filter_rejected(self):
        with pytest.raises(DeductiveError):
            DeductiveRule(
                c("out", Var("X")),
                (Match(q("a", Var("X"))), Filter("Z", ">", 1)),
            )

    def test_empty_body_rejected(self):
        with pytest.raises(DeductiveError):
            DeductiveRule(c("out"), ())

    def test_non_cterm_head_rejected(self):
        with pytest.raises(DeductiveError):
            DeductiveRule(Var("X"), (Match(q("a", Var("X"))),))

    def test_negated_vars_do_not_bind(self):
        # Head var bound only in negation -> unsafe.
        with pytest.raises(DeductiveError):
            DeductiveRule(c("out", Var("X")), (Negation(q("a", Var("X"))),))


class TestProgramAnalysis:
    def test_nonrecursive_program(self):
        program = Program([PATH_RULES[0]])
        assert program.is_recursive() is False

    def test_recursive_program_detected(self):
        program = Program(PATH_RULES)
        assert program.is_recursive() is True

    def test_recursion_rejected_for_event_profile(self):
        with pytest.raises(RecursionRejected):
            Program(PATH_RULES, allow_recursion=False)

    def test_negation_in_cycle_rejected(self):
        looped = [
            DeductiveRule(
                c("a", Var("X")),
                (Match(q("seed", Var("X"))), Negation(q("b", Var("X")))),
            ),
            DeductiveRule(c("b", Var("X")), (Match(q("a", Var("X"))),)),
        ]
        with pytest.raises(DeductiveError):
            Program(looped)

    def test_stratified_negation_accepted(self):
        rules = [
            DeductiveRule(c("b", Var("X")), (Match(q("seed", Var("X"))),)),
            DeductiveRule(
                c("a", Var("X")),
                (Match(q("seed", Var("X"))), Negation(q("b", Var("X")))),
            ),
        ]
        program = Program(rules)
        assert len(program.strata()) >= 1

    def test_strata_order_dependencies_first(self):
        rules = [
            DeductiveRule(c("top", Var("X")), (Match(q("mid", Var("X"))),), name="t"),
            DeductiveRule(c("mid", Var("X")), (Match(q("bot", Var("X"))),), name="m"),
        ]
        strata = Program(rules).strata()
        names = [[r.name for r in s] for s in strata]
        assert names.index(["m"]) < names.index(["t"])

    def test_rules_for(self):
        program = Program(PATH_RULES)
        assert len(program.rules_for("path")) == 2
        assert program.rules_for("edge") == []


class TestForwardChaining:
    def test_transitive_closure(self):
        result = forward_chain(Program(PATH_RULES), edge_base())
        paths = result.with_label("path")
        pairs = {(p.first("src").value, p.first("dst").value) for p in paths}
        assert pairs == {
            ("a", "b"), ("b", "c"), ("c", "d"),
            ("a", "c"), ("b", "d"), ("a", "d"),
        }

    def test_input_base_not_mutated(self):
        base = edge_base()
        forward_chain(Program(PATH_RULES), base)
        assert len(base) == 3

    def test_cyclic_data_terminates(self):
        base = TermBase([edge("a", "b"), edge("b", "a")])
        result = forward_chain(Program(PATH_RULES), base)
        pairs = {
            (p.first("src").value, p.first("dst").value)
            for p in result.with_label("path")
        }
        assert pairs == {("a", "b"), ("b", "a"), ("a", "a"), ("b", "b")}

    def test_filter_goal(self):
        rule = DeductiveRule(
            c("big", Var("X")),
            (Match(q("n", Var("X"))), Filter("X", ">", 10)),
        )
        base = TermBase([u("n", 5), u("n", 15), u("n", 25)])
        result = forward_chain(Program([rule]), base)
        assert {t.value for t in result.with_label("big")} == {15, 25}

    def test_negation_goal(self):
        rules = [
            DeductiveRule(
                c("assigned", Var("X")),
                (Match(parse_query("task{{ id[var X], done }}")),),
            ),
            DeductiveRule(
                c("open", Var("X")),
                (
                    Match(parse_query("task{{ id[var X] }}")),
                    Negation(parse_query("assigned{{ var X }}")),
                ),
            ),
        ]
        base = TermBase(
            [u("task", d("id", "t1"), d("done")), u("task", d("id", "t2"))]
        )
        result = forward_chain(Program(rules), base)
        assert {t.value for t in result.with_label("open")} == {"t2"}

    def test_derived_facts_deduplicated(self):
        # Two rules deriving the same fact produce it once.
        rules = [
            DeductiveRule(c("out", Var("X")), (Match(q("a", Var("X"))),)),
            DeductiveRule(c("out", Var("X")), (Match(q("b", Var("X"))),)),
        ]
        base = TermBase([u("a", 1), u("b", 1)])
        result = forward_chain(Program(rules), base)
        assert len(result.with_label("out")) == 1

    def test_multi_join_rule(self):
        rule = DeductiveRule(
            c("grandparent", c("gp", Var("X")), c("gc", Var("Z"))),
            (
                Match(parse_query("parent{{ p[var X], c[var Y] }}")),
                Match(parse_query("parent{{ p[var Y], c[var Z] }}")),
            ),
        )
        base = TermBase([
            u("parent", d("p", "ann"), d("c", "bob")),
            u("parent", d("p", "bob"), d("c", "cid")),
        ])
        result = forward_chain(Program([rule]), base)
        gp = result.with_label("grandparent")
        assert len(gp) == 1
        assert gp[0].first("gp").value == "ann"


class TestBackwardChaining:
    def test_agrees_with_forward(self):
        program = Program(PATH_RULES)
        base = edge_base()
        forward = forward_chain(program, base)
        backward = BackwardEvaluator(program, base)
        fwd = {b for b in forward.solve(parse_query("path{{ src[var X], dst[var Y] }}"))}
        bwd = {b for b in backward.solve(parse_query("path{{ src[var X], dst[var Y] }}"))}
        assert fwd == bwd

    def test_memoisation_caches(self):
        program = Program(PATH_RULES)
        evaluator = BackwardEvaluator(program, edge_base())
        evaluator.solve(parse_query("path{{ src[var X] }}"))
        assert evaluator._cache
        evaluator.invalidate()
        assert not evaluator._cache

    def test_extensional_query_untouched_by_rules(self):
        program = Program(PATH_RULES)
        evaluator = BackwardEvaluator(program, edge_base())
        result = evaluator.solve(parse_query("edge{{ src[var X] }}"))
        assert {b["X"] for b in result} == {"a", "b", "c"}

    def test_facts_accessor(self):
        program = Program(PATH_RULES)
        evaluator = BackwardEvaluator(program, edge_base())
        assert len(evaluator.facts("path")) == 6

    def test_only_reachable_rules_materialised(self):
        unrelated = DeductiveRule(
            c("noise", Var("X")), (Match(q("whatever", Var("X"))),)
        )
        program = Program(PATH_RULES + [unrelated])
        evaluator = BackwardEvaluator(program, edge_base())
        evaluator.solve(parse_query("path{{ src[var X] }}"))
        (labels,) = evaluator._cache.keys()
        assert "noise" not in labels

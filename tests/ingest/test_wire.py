"""Wire-format tests: round-trip property and the robustness contract.

The property test drives every serialisable event term through the full
client-to-gateway path — serialise, frame, unframe, parse — and demands
the identical term back; the unit tests pin the contract that *any*
malformed input is a counted :class:`~repro.errors.FrameError`, never a
crash.
"""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FrameError, IngestError, WebError
from repro.ingest import wire
from repro.ingest.admission import IngestGateway
from repro.terms import Data, canonical_str, parse_data
from repro.web.node import Simulation

LABELS = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)

SCALARS = st.one_of(
    st.integers(min_value=-10_000, max_value=10_000),
    st.booleans(),
    st.text(alphabet=string.printable, max_size=12),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)

ATTRS = st.dictionaries(LABELS, st.text(alphabet=string.printable, max_size=8),
                        max_size=3)


def event_terms(max_depth: int = 3) -> "st.SearchStrategy[Data]":
    return st.recursive(
        st.builds(lambda lab, attrs: Data(lab, (), attrs=tuple(attrs.items())),
                  LABELS, ATTRS),
        lambda children: st.builds(
            lambda lab, kids, ordered, attrs: Data(
                lab, tuple(kids), ordered, tuple(attrs.items())),
            LABELS,
            st.lists(st.one_of(SCALARS, children), max_size=4),
            st.booleans(),
            ATTRS,
        ),
        max_leaves=10,
    )


SENDERS = st.text(alphabet=string.ascii_lowercase + ":/.-", max_size=20)


class TestRoundTripProperty:
    @settings(max_examples=200, deadline=None)
    @given(term=event_terms(), sender=SENDERS,
           sent_at=st.floats(min_value=0.0, max_value=1e6),
           message_id=st.integers(min_value=1, max_value=2**31))
    def test_serialize_frame_unframe_parse_round_trips(
            self, term, sender, sent_at, message_id):
        data = wire.encode_event(term, sender=sender, sent_at=sent_at,
                                 message_id=message_id)
        payloads = wire.unframe(data)
        assert len(payloads) == 1
        envelope = wire.decode_payload(payloads[0])
        assert canonical_str(envelope.body) == canonical_str(term)
        assert envelope.sender == sender
        assert envelope.sent_at == pytest.approx(sent_at)
        assert envelope.message_id == message_id

    @settings(max_examples=50, deadline=None)
    @given(terms=st.lists(event_terms(), min_size=1, max_size=5),
           chunk=st.integers(min_value=1, max_value=7))
    def test_streamed_chunks_reassemble_every_frame(self, terms, chunk):
        stream = b"".join(
            wire.encode_event(term, sender="s", sent_at=0.0, message_id=i + 1)
            for i, term in enumerate(terms))
        decoder = wire.FrameDecoder()
        payloads = []
        for start in range(0, len(stream), chunk):
            payloads.extend(decoder.feed(stream[start:start + chunk]))
        decoder.finish()
        assert [canonical_str(wire.decode_payload(p).body)
                for p in payloads] == [canonical_str(t) for t in terms]


class TestMalformedFrames:
    def gateway(self):
        sim = Simulation()
        return IngestGateway(sim.node("http://sink.example"))

    def test_truncated_prefix_rejected_at_eof(self):
        decoder = wire.FrameDecoder()
        assert decoder.feed(b"\x00\x00") == []
        with pytest.raises(FrameError):
            decoder.finish()

    def test_truncated_payload_rejected_at_eof(self):
        decoder = wire.FrameDecoder()
        assert decoder.feed(b"\x00\x00\x00\x10only-part") == []
        with pytest.raises(FrameError):
            decoder.finish()

    def test_oversized_declared_length_rejected_before_buffering(self):
        decoder = wire.FrameDecoder(max_frame=64)
        with pytest.raises(FrameError):
            decoder.feed((1 << 16).to_bytes(4, "big"))

    def test_frames_before_a_bad_prefix_survive(self):
        good = wire.encode_event(Data("ok", ()), sender="s", sent_at=0.0,
                                 message_id=1)
        decoder = wire.FrameDecoder(max_frame=1024)
        payloads = decoder.feed(good + (1 << 20).to_bytes(4, "big"))
        assert len(payloads) == 1  # the good frame is not lost
        with pytest.raises(FrameError):
            decoder.feed(b"")  # the framing error surfaces on the next call

    def test_oversized_payload_rejected_at_encode(self):
        with pytest.raises(FrameError):
            wire.frame(b"x" * 100, max_frame=64)

    def test_non_utf8_payload_rejected(self):
        with pytest.raises(FrameError):
            wire.decode_payload(b"\xff\xfe\x00")

    def test_non_term_payload_rejected(self):
        with pytest.raises(FrameError):
            wire.decode_payload(b"this is not a term {{{")

    def test_non_envelope_term_rejected(self):
        with pytest.raises(FrameError):
            wire.decode_payload(b'order{ seq[1] }')

    def test_envelope_without_body_rejected(self):
        with pytest.raises(FrameError):
            wire.decode_payload(b"envelope{ header{ } }")

    def test_frame_error_is_a_web_error(self):
        # The tier's errors slot into the existing hierarchy, so callers
        # catching WebError keep working.
        assert issubclass(FrameError, IngestError)
        assert issubclass(IngestError, WebError)

    def test_gateway_counts_malformed_payloads(self):
        gateway = self.gateway()
        for bad in (b"\xff\xfe", b"not a term", b"scalar[1]"):
            with pytest.raises(FrameError):
                gateway.offer_payload(bad)
        assert gateway.stats.malformed == 3
        # A well-formed offer still works afterwards: no crash, no state rot.
        ok = wire.encode_event(Data("order", (Data("seq", (1,)),)),
                               sender="s", sent_at=0.0, message_id=1)
        assert gateway.offer_payload(wire.unframe(ok)[0]) is True
        assert gateway.stats.admitted == 1

    def test_round_trip_matches_parser_surface(self):
        # The wire text is the ordinary term surface: a hand-written
        # envelope parses the same as an encoded one.
        text = ('envelope{ header{ sender["s"], sent-at[1.5], '
                'message-id[7] }, body{ order{ seq[42] } } }')
        envelope = wire.decode_payload(text.encode("utf-8"))
        assert canonical_str(envelope.body) == canonical_str(
            parse_data("order{ seq[42] }"))
        assert envelope.message_id == 7

"""Transport tests: the loopback client and the asyncio socket server.

The socket tests bind 127.0.0.1:0 (an ephemeral port), stream real bytes
through the framed protocol, then run the simulation to watch the events
fire — the full client → transport → admission → inbox → rules path.
"""

import asyncio

import pytest

from repro.errors import FrameError
from repro.ingest import (
    AsyncIngestServer,
    IngestConfig,
    IngestGateway,
    LoopbackClient,
    encode_event,
)
from repro.ingest.transport import send_frames
from repro.terms import parse_data
from repro.web.node import Simulation


def make_gateway(config=None, collect=None):
    sim = Simulation()
    node = sim.node("http://sink.example")
    if collect is not None:
        node.on_event(collect)
    return sim, node, IngestGateway(node, config)


class TestLoopbackClient:
    def test_wire_codec_round_trips_through_bytes(self):
        seen = []
        sim, node, gateway = make_gateway(collect=seen.append)
        client = LoopbackClient(gateway, sender="http://c.example")
        assert client.send(parse_data('order{ seq[1], note["héllo"] }'))
        sim.run()
        assert len(seen) == 1
        assert seen[0].source == "http://c.example"
        assert seen[0].term.first("note").value == "héllo"

    def test_object_codec_skips_the_wire(self):
        sim, node, gateway = make_gateway()
        client = LoopbackClient(gateway, sender="s", codec="object")
        assert client.send(parse_data("order{ seq[1] }"))
        assert gateway.stats.admitted == 1

    def test_loopback_reports_refusals(self):
        sim, node, gateway = make_gateway(
            IngestConfig(high_water=1, policy="reject"))
        client = LoopbackClient(gateway, sender="s")
        assert client.send(parse_data("order{ seq[1] }")) is True
        assert client.send(parse_data("order{ seq[2] }")) is False

    def test_unknown_codec_rejected(self):
        sim, node, gateway = make_gateway()
        with pytest.raises(FrameError):
            LoopbackClient(gateway, codec="pickle")

    def test_message_ids_come_from_the_simulation(self):
        # Two fresh simulations must produce the same wire bytes for the
        # same traffic — ids are per-Simulation, not process-global.
        def first_frame():
            sim, node, gateway = make_gateway()
            LoopbackClient(gateway, sender="s").send(
                parse_data("order{ seq[1] }"), sent_at=0.0)
            return gateway.stats.admitted

        assert first_frame() == first_frame() == 1


def serve(gateway, coroutine_factory):
    """Run one async client session against a fresh server."""
    server = AsyncIngestServer(gateway)

    async def main():
        host, port = await server.start()
        try:
            return await coroutine_factory(host, port)
        finally:
            await server.stop()

    return asyncio.run(main())


class TestAsyncIngestServer:
    def test_end_to_end_socket_to_rule_firing(self):
        seen = []
        sim, node, gateway = make_gateway(collect=seen.append)

        async def session(host, port):
            frames = [
                encode_event(parse_data(f"order{{ seq[{i}] }}"),
                             sender="http://c.example", sent_at=0.0,
                             message_id=i + 1)
                for i in range(3)
            ]
            return await send_frames(host, port, frames)

        acks = serve(gateway, session)
        assert acks == b"+++"
        sim.run()  # the scheduler pumps what the socket admitted
        assert [e.term.first("seq").value for e in seen] == [0, 1, 2]
        assert gateway.stats.fired == 3

    def test_malformed_payload_is_answered_not_fatal(self):
        sim, node, gateway = make_gateway()

        async def session(host, port):
            good = encode_event(parse_data("order{ seq[1] }"), sender="s",
                                sent_at=0.0, message_id=1)
            bad = b"\x00\x00\x00\x07not{a}("
            return await send_frames(host, port, [good, bad, good])

        # garbage payload acked '!', later frames still served: the
        # framing is intact, so the connection survives.
        assert serve(gateway, session) == b"+!+"
        assert gateway.stats.malformed == 1
        assert gateway.stats.admitted == 2

    def test_broken_framing_closes_connection_but_not_server(self):
        sim, node, gateway = make_gateway()

        async def session(host, port):
            first = await send_frames(
                host, port, [(1 << 28).to_bytes(4, "big")])  # huge prefix
            second = await send_frames(
                host, port, [encode_event(parse_data("order{ seq[1] }"),
                                          sender="s", sent_at=0.0,
                                          message_id=1)])
            return first, second

        first, second = serve(gateway, session)
        assert first == b"!"       # connection refused further service
        assert second == b"+"      # but the server kept listening
        assert gateway.stats.malformed == 1

    def test_truncated_stream_counts_malformed(self):
        sim, node, gateway = make_gateway()

        async def session(host, port):
            return await send_frames(host, port, [b"\x00\x00\x00\x20half"])

        assert serve(gateway, session) == b"!"
        assert gateway.stats.malformed == 1

    def test_refusals_are_acked_minus(self):
        sim, node, gateway = make_gateway(
            IngestConfig(high_water=1, policy="reject"))

        async def session(host, port):
            frames = [
                encode_event(parse_data(f"order{{ seq[{i}] }}"), sender="s",
                             sent_at=0.0, message_id=i + 1)
                for i in range(3)
            ]
            return await send_frames(host, port, frames)

        assert serve(gateway, session) == b"+--"
        assert gateway.stats.rejected == 2

    def test_many_clients_interleave(self):
        seen = []
        sim, node, gateway = make_gateway(collect=seen.append)

        async def session(host, port):
            async def one_client(i):
                frames = [
                    encode_event(parse_data(f"order{{ seq[{i * 10 + j}] }}"),
                                 sender=f"http://c{i}.example", sent_at=0.0,
                                 message_id=i * 10 + j + 1)
                    for j in range(5)
                ]
                return await send_frames(host, port, frames)

            return await asyncio.gather(*(one_client(i) for i in range(8)))

        acks = serve(gateway, session)
        assert all(a == b"+++++" for a in acks)
        sim.run()
        assert gateway.stats.fired == 40
        assert len({e.source for e in seen}) == 8

"""Admission-controller tests: policies, rate limiting, fairness, latency.

Everything here runs on the simulated clock, so every latency assertion
is exact — determinism is part of the contract
(:mod:`repro.ingest.stats`).
"""

import pytest

from repro.errors import IngestError, RuleError
from repro.ingest import IngestConfig, IngestGateway
from repro.terms import Data, parse_data
from repro.web.node import Simulation


def order(seq: int) -> Data:
    return Data("order", (Data("seq", (seq,)),))


def make_gateway(config=None, collect=None):
    sim = Simulation()
    node = sim.node("http://sink.example")
    if collect is not None:
        node.on_event(collect)
    return sim, node, IngestGateway(node, config)


def seqs(events) -> list:
    return [e.term.children[0].children[0] for e in events]


class TestConfigValidation:
    def test_defaults_are_valid(self):
        IngestConfig()

    @pytest.mark.parametrize("kwargs", [
        {"high_water": 0},
        {"policy": "drop-newest"},
        {"rate": 0.0},
        {"burst": 0.5},
        {"weights": {"a": 0.0}},
        {"pump_batch": 0},
        {"drain_interval": -1.0},
        {"idle_expiry": 0.0},
        {"max_frame": 4},
        {"latency_samples": 0},
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(IngestError):
            IngestConfig(**kwargs)


class TestOverflowPolicies:
    def test_reject_refuses_at_high_water(self):
        seen = []
        sim, node, gateway = make_gateway(
            IngestConfig(high_water=3, policy="reject"), seen.append)
        results = [gateway.offer(order(i), sender="a") for i in range(5)]
        assert results == [True, True, True, False, False]
        sim.run()
        assert seqs(seen) == [0, 1, 2]
        assert gateway.stats.rejected == 2
        assert gateway.stats.shed == 2

    def test_drop_oldest_evicts_the_oldest_queued_event(self):
        seen = []
        sim, node, gateway = make_gateway(
            IngestConfig(high_water=3, policy="drop-oldest"), seen.append)
        results = [gateway.offer(order(i), sender="a") for i in range(5)]
        assert results == [True] * 5  # the *new* event is always admitted
        sim.run()
        assert seqs(seen) == [2, 3, 4]  # 0 and 1 were evicted
        assert gateway.stats.dropped == 2

    def test_drop_oldest_is_global_across_senders(self):
        seen = []
        sim, node, gateway = make_gateway(
            IngestConfig(high_water=2, policy="drop-oldest"), seen.append)
        gateway.offer(order(0), sender="a")
        gateway.offer(order(1), sender="b")
        gateway.offer(order(2), sender="a")  # evicts a's 0, the global oldest
        sim.run()
        assert sorted(seqs(seen)) == [1, 2]

    def test_spill_preserves_fifo_order_through_disk(self):
        seen = []
        sim, node, gateway = make_gateway(
            IngestConfig(high_water=2, policy="spill", pump_batch=2,
                         drain_interval=0.1), seen.append)
        for i in range(10):
            assert gateway.offer(order(i), sender="a") is True
        sim.run()
        assert seqs(seen) == list(range(10))  # disk never reorders
        stats = gateway.stats
        assert stats.spilled == 8 and stats.spill_replayed == 8
        assert stats.shed == 0 and stats.fired == 10
        assert gateway.spill_backlog == 0

    def test_spill_keeps_spilling_until_replay_completes(self):
        # Once events are on disk, newer arrivals must follow them there —
        # admitting a newcomer to memory would jump the queue.
        sim, node, gateway = make_gateway(
            IngestConfig(high_water=2, policy="spill"))
        for i in range(3):
            gateway.offer(order(i), sender="a")
        assert gateway.stats.spilled == 1
        gateway.offer(order(3), sender="a")
        assert gateway.stats.spilled == 2  # backlog is below the mark, but
        assert gateway.backlog == 2        # the disk queue is not empty
        sim.run()
        assert gateway.stats.fired == 4

    def test_spill_replay_restores_sent_at(self):
        seen = []
        sim, node, gateway = make_gateway(
            IngestConfig(high_water=1, policy="spill"), seen.append)
        gateway.offer(order(0), sender="a", sent_at=0.0)
        gateway.offer(order(1), sender="a", sent_at=0.0)  # spilled
        sim.scheduler.run_until(5.0)
        assert len(seen) == 2
        # Both kept their send-time occurrence despite firing later.
        assert [e.occurrence for e in seen] == [0.0, 0.0]


class TestDurableSpill:
    """``spill_dir`` names the spill file, fsyncs every record, and makes
    a new gateway on the same directory *recover* the backlog a dead
    process left behind."""

    def config(self, tmp_path, **kw):
        kw.setdefault("high_water", 2)
        kw.setdefault("pump_batch", 2)
        return IngestConfig(policy="spill", spill_dir=str(tmp_path), **kw)

    def spill_path(self, tmp_path):
        import os

        return os.path.join(str(tmp_path), "ingest-spill.wal")

    def test_spilled_records_land_in_the_named_file(self, tmp_path):
        import os

        sim, node, gateway = make_gateway(self.config(tmp_path))
        for i in range(5):
            assert gateway.offer(order(i), sender="a")
        assert gateway.spill_backlog == 3
        assert os.path.getsize(self.spill_path(tmp_path)) > 0
        gateway.close()

    def test_replay_after_simulated_crash(self, tmp_path):
        """The satellite's exact scenario: spill, kill the process (here:
        abandon the gateway undrained), construct a fresh gateway on the
        same directory — every spilled event must still be delivered."""
        sim, node, gateway = make_gateway(self.config(tmp_path))
        for i in range(6):
            assert gateway.offer(order(i), sender="a")
        assert gateway.stats.spilled == 4
        # "Crash": no sim.run(), no drain — the process just dies.  (The
        # descriptor is released as process death would release it; the
        # fsync'd bytes on disk are the point.)
        gateway._spill_file.close()

        seen = []
        sim2, node2, recovered = make_gateway(self.config(tmp_path),
                                              seen.append)
        assert recovered.stats.spill_recovered == 4
        assert recovered.spill_backlog == 4
        sim2.run()
        # The first gateway's two in-memory events died with it; the four
        # fsync'd spill records survived, in order.
        assert seqs(seen) == [2, 3, 4, 5]
        assert recovered.spill_backlog == 0

    def test_torn_trailing_record_is_truncated_on_recovery(self, tmp_path):
        sim, node, gateway = make_gateway(self.config(tmp_path))
        for i in range(5):
            gateway.offer(order(i), sender="a")
        gateway.close()   # release the fd; the records are on disk
        with open(self.spill_path(tmp_path), "ab") as fh:
            fh.write(b"\x00\x00\x02")   # a crash mid-append: torn prefix

        seen = []
        sim2, node2, recovered = make_gateway(self.config(tmp_path),
                                              seen.append)
        assert recovered.stats.spill_recovered == 3
        sim2.run()
        assert seqs(seen) == [2, 3, 4]

    def test_full_drain_truncates_the_file(self, tmp_path):
        import os

        seen = []
        sim, node, gateway = make_gateway(self.config(tmp_path), seen.append)
        for i in range(4):
            gateway.offer(order(i), sender="a")
        sim.run()
        assert seqs(seen) == [0, 1, 2, 3]
        assert os.path.getsize(self.spill_path(tmp_path)) == 0
        # ...so the next gateway recovers nothing.
        sim2, node2, fresh = make_gateway(self.config(tmp_path))
        assert fresh.stats.spill_recovered == 0

    def test_anonymous_spill_is_unchanged_without_spill_dir(self):
        sim, node, gateway = make_gateway(
            IngestConfig(high_water=1, policy="spill"))
        gateway.offer(order(0), sender="a")
        gateway.offer(order(1), sender="a")   # spilled, anonymous file
        assert gateway.stats.spilled == 1
        assert gateway.stats.spill_recovered == 0
        sim.run()
        assert gateway.stats.fired == 2


class TestRateLimiting:
    def test_burst_then_refill_on_the_simulated_clock(self):
        sim, node, gateway = make_gateway(
            IngestConfig(rate=1.0, burst=2.0))
        assert [gateway.offer(order(i), sender="a") for i in range(3)] == \
            [True, True, False]
        assert gateway.stats.rate_limited == 1
        outcomes = []
        sim.scheduler.at(2.5, lambda: outcomes.extend(
            gateway.offer(order(10 + i), sender="a") for i in range(3)))
        sim.run()
        # 2.5 simulated seconds at 1 token/s refills two (bucket cap 2.0).
        assert outcomes == [True, True, False]

    def test_buckets_are_per_sender(self):
        sim, node, gateway = make_gateway(IngestConfig(rate=1.0, burst=1.0))
        assert gateway.offer(order(0), sender="a") is True
        assert gateway.offer(order(1), sender="a") is False
        assert gateway.offer(order(2), sender="b") is True  # b's own bucket


class TestWeightedFairness:
    def test_deficit_round_robin_serves_by_weight(self):
        seen = []
        sim, node, gateway = make_gateway(
            IngestConfig(weights={"heavy": 2.0}, pump_batch=3,
                         drain_interval=1.0), seen.append)
        for i in range(12):
            gateway.offer(order(i), sender="heavy")
        for i in range(100, 112):
            gateway.offer(order(i), sender="light")
        sim.scheduler.run_until(3.5)  # three pump rounds of 3
        heavy = sum(1 for s in seqs(seen) if s < 100)
        light = len(seen) - heavy
        assert len(seen) == 9
        assert heavy == 6 and light == 3  # 2:1, the configured weights
        sim.run()
        assert gateway.stats.fired == 24  # and nobody starves

    def test_single_sender_fifo_is_preserved(self):
        seen = []
        sim, node, gateway = make_gateway(
            IngestConfig(pump_batch=4, drain_interval=0.5), seen.append)
        for i in range(10):
            gateway.offer(order(i), sender="a")
        sim.run()
        assert seqs(seen) == list(range(10))


class TestLatencyAccounting:
    def test_enqueue_to_fire_latency_is_exact(self):
        sim, node, gateway = make_gateway(
            IngestConfig(pump_batch=1, drain_interval=0.5))
        for i in range(3):
            gateway.offer(order(i), sender="a")
        sim.run()
        latency = gateway.stats.latency
        assert latency.count == 3
        # One event per 0.5s round: latencies exactly 0.5, 1.0, 1.5.
        assert latency.percentile(0) == 0.5
        assert latency.percentile(50) == 1.0
        assert latency.max == 1.5
        assert latency.mean == 1.0

    def test_foreign_events_are_not_charged_to_ingestion(self):
        sim, node, gateway = make_gateway()
        gateway.offer(order(0), sender="a")
        node.raise_local(parse_data("other{ }"))  # hand delivery, no gateway
        sim.run()
        assert gateway.stats.fired == 1
        assert gateway.stats.latency.count == 1

    def test_reservoir_keeps_exact_count_and_max(self):
        sim, node, gateway = make_gateway(
            IngestConfig(pump_batch=1, drain_interval=0.1,
                         latency_samples=4))
        for i in range(20):
            gateway.offer(order(i), sender="a")
        sim.run()
        latency = gateway.stats.latency
        assert latency.count == 20           # exact even when sampling
        assert latency.max == pytest.approx(2.0)
        assert 0.1 <= latency.percentile(50) <= 2.0


class TestHousekeeping:
    def test_idle_senders_expire_and_the_sweep_stops_itself(self):
        sim, node, gateway = make_gateway(IngestConfig(idle_expiry=1.0))
        gateway.offer(order(0), sender="a")
        gateway.offer(order(1), sender="b")
        assert gateway.stats.senders_tracked == 2
        sim.scheduler.at(5.0, lambda: gateway.offer(order(2), sender="c"))
        sim.run()  # terminates: the recurring sweep stops when state is gone
        assert gateway.stats.senders_expired == 3
        assert gateway.stats.senders_tracked == 0

    def test_backlog_gauges(self):
        sim, node, gateway = make_gateway(
            IngestConfig(pump_batch=2, drain_interval=0.1))
        for i in range(5):
            gateway.offer(order(i), sender="a")
        assert gateway.backlog == 5
        assert gateway.stats.backlog_peak == 5
        sim.run()
        assert gateway.backlog == 0
        assert gateway.stats.backlog == 0
        assert gateway.stats.backlog_peak == 5

    def test_close_is_idempotent(self):
        sim, node, gateway = make_gateway(
            IngestConfig(high_water=1, policy="spill"))
        gateway.offer(order(0), sender="a")
        gateway.offer(order(1), sender="a")  # opens the spill file
        sim.run()
        gateway.close()
        gateway.close()


class TestFacadeIntegration:
    RULE = """
        RULE count
        ON order{{ seq[var S] }}
        DO RAISE TO "http://sink.example" seen{ seq[var S] }
    """

    def reactive(self, config):
        from repro import EngineConfig

        sim = Simulation()
        node = sim.reactive_node("http://sink.example", config=config)
        node.install(self.RULE)
        return sim, node

    def test_gateway_built_from_engine_config(self):
        from repro import EngineConfig

        sim, node = self.reactive(EngineConfig(ingest=IngestConfig()))
        assert node.ingest is not None
        client = node.loopback(sender="http://c.example")
        assert client.send(parse_data("order{ seq[1] }")) is True
        sim.run()
        stats = node.stats
        assert stats.rule_firings == 1
        assert stats.ingest_admitted == 1
        assert stats["ingest_latency_max"] == node.ingest_stats.latency.max
        assert node.ingest_stats.fired == 1

    def test_no_gateway_without_the_knob(self):
        from repro import EngineConfig

        sim, node = self.reactive(EngineConfig())
        assert node.ingest is None
        assert node.ingest_stats is None
        assert node.stats.ingest_admitted == 0
        with pytest.raises(RuleError):
            node.loopback()

    def test_bad_ingest_config_rejected(self):
        from repro import EngineConfig

        with pytest.raises(RuleError):
            EngineConfig(ingest="yes please")

    def test_disabled_ablation_matches_hand_delivery(self):
        from repro import EngineConfig

        # Same workload once through the gateway, once hand-delivered
        # with no gateway configured: identical engine behaviour.
        sim_g, gated = self.reactive(
            EngineConfig(ingest=IngestConfig(drain_interval=0.0)))
        client = gated.loopback(sender="http://c.example", codec="object")
        for i in range(10):
            client.send(parse_data(f"order{{ seq[{i}] }}"))
        sim_g.run()

        sim_h, hand = self.reactive(EngineConfig())
        bare = hand.node
        for i in range(10):
            bare.deliver(bare.stamp_event(
                parse_data(f"order{{ seq[{i}] }}"),
                source="http://c.example"))
        sim_h.run()

        for key in ("events_processed", "rule_firings", "actions_executed",
                    "events_raised", "condition_evaluations"):
            assert gated.stats[key] == hand.stats[key], key

    def test_sync_delivery_records_latency_inline(self):
        from repro import EngineConfig

        sim, node = self.reactive(EngineConfig(
            sync_delivery=True, ingest=IngestConfig(drain_interval=0.0)))
        node.loopback(codec="object").send(parse_data("order{ seq[1] }"))
        sim.run()
        assert node.stats.rule_firings == 1
        assert node.ingest_stats.fired == 1
        assert node.ingest_stats.latency.max == 0.0  # same-instant pump

    def test_sharded_node_with_gateway(self):
        from repro import EngineConfig

        sim = Simulation()
        node = sim.reactive_node(
            "http://sink.example",
            config=EngineConfig(shards=2, ingest=IngestConfig()))
        node.install(self.RULE)
        client = node.loopback(sender="http://c.example")
        for i in range(6):
            client.send(parse_data(f"order{{ seq[{i}] }}"))
        sim.run()
        assert node.stats.rule_firings == 6
        assert node.ingest_stats.fired == 6
        assert node.stats.ingest_admitted == 6

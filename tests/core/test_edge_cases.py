"""Edge-case coverage across engine, conditions, actions, and web nodes."""

import pytest

from repro.core import (
    CompareCond,
    PyAction,
    QueryCond,
    Raise,
    ReactiveEngine,
    Update,
    eca,
)
from repro.core.actions import Persist, UninstallRule, resolve_uri
from repro.core import conditions as cond
from repro.errors import ActionError, ResourceNotFound, RuleError, WebError
from repro.events.queries import EAtom
from repro.terms import Bindings, Var, d, parse_construct, parse_data, parse_query, q
from repro.web import Simulation


def one_node(**kwargs):
    sim = Simulation(latency=0.0)
    node = sim.node("http://n.example")
    return sim, node, ReactiveEngine(node, **kwargs)


class TestEngineLifecycle:
    def test_duplicate_install_rejected(self):
        sim, node, engine = one_node()
        rule = eca("r", EAtom(q("a")), PyAction(lambda n, b: None))
        engine.install(rule)
        with pytest.raises(RuleError):
            engine.install(rule)

    def test_uninstall_unknown_rejected(self):
        sim, node, engine = one_node()
        with pytest.raises(RuleError):
            engine.uninstall("ghost")

    def test_uninstall_stops_firing(self):
        sim, node, engine = one_node()
        hits = []
        engine.install(eca("r", EAtom(parse_query("go")),
                           PyAction(lambda n, b: hits.append(1))))
        node.raise_local(parse_data("go"))
        sim.run()  # drain before the uninstall: delivery is queued
        engine.uninstall("r")
        node.raise_local(parse_data("go"))
        sim.run()
        assert hits == [1]

    def test_install_non_rule_rejected(self):
        sim, node, engine = one_node()
        with pytest.raises(RuleError):
            engine.install("not a rule")  # type: ignore[arg-type]

    def test_refresh_preserves_partial_matches(self):
        from repro.events.queries import EAnd

        sim, node, engine = one_node()
        hits = []
        engine.install(eca(
            "join", EAnd(EAtom(q("a")), EAtom(q("b"))),
            PyAction(lambda n, b: hits.append(1)),
        ))
        node.raise_local(parse_data("a{}"))
        sim.run()  # a is a processed partial match before the refresh
        # Installing another rule triggers refresh; the a-partial survives.
        engine.install(eca("other", EAtom(q("zzz")), PyAction(lambda n, b: None)))
        node.raise_local(parse_data("b{}"))
        sim.run()
        assert hits == [1]

    def test_duplicate_procedure_rejected(self):
        sim, node, engine = one_node()
        engine.define_procedure("p", (), PyAction(lambda n, b: None))
        with pytest.raises(RuleError):
            engine.define_procedure("p", (), PyAction(lambda n, b: None))

    def test_engine_with_consumption_policy(self):
        from repro.events.queries import EAnd

        sim, node, engine_default = one_node()
        sim2 = Simulation(latency=0.0)
        node2 = sim2.node("http://m.example")
        engine_chronicle = ReactiveEngine(node2, consumption="chronicle")
        hits_default, hits_chronicle = [], []
        query = EAnd(EAtom(q("a", Var("X"))), EAtom(q("b", Var("Y"))))
        engine_default.install(eca("j", query,
                                   PyAction(lambda n, b: hits_default.append(1))))
        engine_chronicle.install(eca("j", query,
                                     PyAction(lambda n, b: hits_chronicle.append(1))))
        for raiser, runner in ((node, sim), (node2, sim2)):
            raiser.raise_local(parse_data("a{1}"))
            raiser.raise_local(parse_data("a{2}"))
            raiser.raise_local(parse_data("b{9}"))
            runner.run()
        assert len(hits_default) == 2    # both a's pair
        assert len(hits_chronicle) == 1  # b consumed by the first pairing


class TestConditionEdges:
    def test_compare_with_non_scalar_fails_closed(self):
        sim, node, engine = one_node()
        result = cond.evaluate(
            CompareCond(d("term"), "==", 1), node, Bindings())
        assert result == []

    def test_unknown_condition_rejected(self):
        sim, node, engine = one_node()
        with pytest.raises(RuleError):
            cond.evaluate("nope", node, Bindings())

    def test_query_cond_missing_resource_propagates(self):
        sim, node, engine = one_node()
        with pytest.raises(ResourceNotFound):
            cond.evaluate(QueryCond("http://n.example/ghost", q("x")),
                          node, Bindings())

    def test_uri_var_bound_to_non_string(self):
        sim, node, engine = one_node()
        with pytest.raises(RuleError):
            cond.evaluate(QueryCond(Var("U"), q("x")), node, Bindings.of(U=5))

    def test_stats_not_counted_for_nested(self):
        sim, node, engine = one_node()
        node.put("http://n.example/d", parse_data("d{ x }"))
        from repro.core import AndCond

        stats = engine.stats
        before = stats.condition_evaluations
        cond.evaluate(
            AndCond(QueryCond("http://n.example/d", q("d")),
                    QueryCond("http://n.example/d", q("d"))),
            node, Bindings(), stats,
        )
        assert stats.condition_evaluations == before + 1  # one top-level eval


class TestActionEdges:
    def test_resolve_uri_unbound_var(self):
        with pytest.raises(ActionError):
            resolve_uri(Var("U"), Bindings())

    def test_update_require_effect(self):
        sim, node, engine = one_node()
        node.put("http://n.example/d", parse_data("d{}"))
        action = Update("http://n.example/d", "delete", q("missing"),
                        require_effect=True)
        with pytest.raises(ActionError):
            engine.execute(action, Bindings())

    def test_update_without_effect_is_noop(self):
        sim, node, engine = one_node()
        node.put("http://n.example/d", parse_data("d{}"))
        engine.execute(Update("http://n.example/d", "delete", q("missing")),
                       Bindings())
        assert engine.stats.updates_applied == 0

    def test_update_validation(self):
        with pytest.raises(RuleError):
            Update("http://n.example/d", "upsert", q("x"))
        with pytest.raises(RuleError):
            Update("http://n.example/d", "insert", q("x"))  # payload missing

    def test_persist_with_var_uri(self):
        sim, node, engine = one_node()
        engine.execute(
            Persist(Var("U"), parse_construct("entry[1]")),
            Bindings.of(U="http://n.example/log"),
        )
        assert "http://n.example/log" in node.resources

    def test_uninstall_rule_via_variable(self):
        sim, node, engine = one_node()
        engine.install(eca("victim", EAtom(q("a")), PyAction(lambda n, b: None)))
        engine.execute(UninstallRule(Var("R")), Bindings.of(R="victim"))
        assert "victim" not in engine.rules()

    def test_raise_to_unbound_var(self):
        sim, node, engine = one_node()
        with pytest.raises(ActionError):
            engine.execute(Raise(Var("C"), parse_construct("x{}")), Bindings())

    def test_pyaction_exception_wrapped(self):
        sim, node, engine = one_node()
        action = PyAction(lambda n, b: 1 / 0, "crash")
        with pytest.raises(ActionError) as info:
            engine.execute(action, Bindings())
        assert "crash" in str(info.value)

    def test_unknown_action_rejected(self):
        sim, node, engine = one_node()
        with pytest.raises(ActionError):
            engine.execute(42, Bindings())


class TestNodeEdges:
    def test_raise_local_no_network_traffic(self):
        sim, node, engine = one_node()
        node.raise_local(parse_data("internal{}"))
        assert sim.stats.messages == 0
        assert node.events_received == 1

    def test_self_send_goes_over_network(self):
        sim, node, engine = one_node()
        node.raise_event(node.uri, parse_data("loop{}"))
        sim.run()
        assert sim.stats.messages == 1

    def test_non_event_message_rejected(self):
        from repro.web.network import Message

        sim, node, engine = one_node()
        with pytest.raises(WebError):
            node.receive(Message("x", "y", parse_data("z"), "request", 1))

    def test_event_occurrence_from_envelope(self):
        sim = Simulation(latency=0.5)
        a = sim.node("http://a.example")
        b = sim.node("http://b.example")
        seen = []
        b.on_event(lambda e: seen.append((e.occurrence, e.reception)))
        sim.scheduler.at(1.0, lambda: a.raise_event(b.uri, parse_data("ping{}")))
        sim.run()
        assert seen == [(1.0, 1.5)]  # sent at 1.0, received one latency later

"""Overlapping-rule combinators: priority, first-match, specificity.

Unit coverage for the Pucella-style combinator groups compiled into
dispatch (see ``core/rulesets.py``): winner selection per answered event,
tie semantics, suppression accounting, and the structural guard rails
(groups hold rules only, no nested subsets).
"""

import pytest

from repro import EngineConfig, Simulation
from repro.core import (
    RuleSet,
    eca,
    first_match,
    priority_group,
    specificity_override,
)
from repro.core.actions import PyAction
from repro.core.rulesets import compile_group_specs
from repro.errors import RuleError
from repro.events import EAtom, ENot, ESeq, EWithin
from repro.terms import Var, d, q


def node_with(sim_and_rules, **config_kwargs):
    sim = Simulation(latency=0.0)
    node = sim.reactive_node("http://c.example",
                             config=EngineConfig(**config_kwargs))
    node.install(*sim_and_rules)
    return sim, node


def recorder(fired, tag):
    return PyAction(lambda n, b, t=tag: fired.append(t), "record")


class TestPriorityGroup:
    def test_highest_answering_priority_wins(self):
        fired = []
        pg = priority_group("pg")
        pg.add(eca("low", EAtom(q("stock", Var("X"))), recorder(fired, "low")),
               priority=1.0)
        pg.add(eca("high", EAtom(q("stock", sym="ACME")), recorder(fired, "high")),
               priority=2.0)
        sim, node = node_with([pg])
        sim.scheduler.at(0.0, lambda: node.raise_local(d("stock", 1, sym="ACME")))
        sim.scheduler.at(1.0, lambda: node.raise_local(d("stock", 2, sym="IBM")))
        sim.run()
        # ACME: both answer, high wins.  IBM: only low answers — a
        # non-answering high member suppresses nothing.
        assert fired == ["high", "low"]
        assert node.stats.firings_suppressed == 1

    def test_priority_ties_all_fire_in_install_order(self):
        fired = []
        pg = priority_group("pg")
        pg.add(eca("a", EAtom(q("stock", Var("X"))), recorder(fired, "a")),
               priority=5.0)
        pg.add(eca("b", EAtom(q("stock", Var("X"))), recorder(fired, "b")),
               priority=5.0)
        pg.add(eca("c", EAtom(q("stock", Var("X"))), recorder(fired, "c")),
               priority=1.0)
        sim, node = node_with([pg])
        node.raise_local(d("stock", 1))
        sim.run()
        assert fired == ["a", "b"]
        assert node.stats.firings_suppressed == 1

    def test_grouped_absence_answers_resolve_at_the_deadline(self):
        fired = []
        absence = EWithin(ESeq(EAtom(q("ticket", Var("T"))),
                               ENot(q("reply", Var("T")))), 5.0)
        pg = priority_group("pg")
        pg.add(eca("page", absence, recorder(fired, "page")), priority=2.0)
        pg.add(eca("mail", absence, recorder(fired, "mail")), priority=1.0)
        sim, node = node_with([pg])
        node.raise_local(d("ticket", 1))
        sim.run()
        assert fired == ["page"]  # one escalation, not both
        assert node.stats.firings_suppressed == 1


class TestFirstMatchGroup:
    def test_first_answering_member_wins_with_overlapping_discriminators(self):
        fired = []
        fm = first_match("fm")
        fm.add(eca("acme", EAtom(q("stock", sym="ACME")), recorder(fired, "acme")))
        fm.add(eca("tech", EAtom(q("stock", sector="tech")), recorder(fired, "tech")))
        fm.add(eca("any", EAtom(q("stock", Var("X"))), recorder(fired, "any")))
        sim, node = node_with([fm])
        at = sim.scheduler.at
        at(0.0, lambda: node.raise_local(d("stock", 1, sym="ACME", sector="tech")))
        at(1.0, lambda: node.raise_local(d("stock", 2, sector="tech")))
        at(2.0, lambda: node.raise_local(d("stock", 3, sym="IBM")))
        sim.run()
        # Overlap resolves to the earliest member that answered each event.
        assert fired == ["acme", "tech", "any"]
        assert node.stats.firings_suppressed == 3  # tech+any, any, —, any

    def test_exactly_one_member_fires_even_on_identical_queries(self):
        fired = []
        fm = first_match("fm")
        fm.add(eca("one", EAtom(q("a", Var("X"))), recorder(fired, "one")))
        fm.add(eca("two", EAtom(q("a", Var("X"))), recorder(fired, "two")))
        sim, node = node_with([fm])
        node.raise_local(d("a", 1))
        sim.run()
        assert fired == ["one"]


class TestSpecificityGroup:
    def test_constant_overrides_wildcard(self):
        fired = []
        so = specificity_override("so")
        so.add(eca("loose", EAtom(q("stock", Var("X"))), recorder(fired, "loose")))
        so.add(eca("tight", EAtom(q("stock", sym="ACME")), recorder(fired, "tight")))
        sim, node = node_with([so])
        sim.scheduler.at(0.0, lambda: node.raise_local(d("stock", 1, sym="ACME")))
        sim.scheduler.at(1.0, lambda: node.raise_local(d("stock", 2, sym="IBM")))
        sim.run()
        # ACME: the 1-constant member overrides the 0-constant wildcard;
        # IBM: only the wildcard answers, so it fires unsuppressed.
        assert fired == ["tight", "loose"]
        assert node.stats.firings_suppressed == 1

    def test_two_constants_beat_one(self):
        fired = []
        so = specificity_override("so")
        so.add(eca("one", EAtom(q("stock", sym="ACME")), recorder(fired, "one")))
        so.add(eca("two", EAtom(q("stock", q("venue", "NYSE"), sym="ACME")),
                recorder(fired, "two")))
        sim, node = node_with([so])
        node.raise_local(d("stock", d("venue", "NYSE"), sym="ACME"))
        sim.run()
        assert fired == ["two"]
        assert node.stats.firings_suppressed == 1

    def test_equal_specificity_ties_all_fire(self):
        fired = []
        so = specificity_override("so")
        so.add(eca("a", EAtom(q("stock", sym="ACME")), recorder(fired, "a")))
        so.add(eca("b", EAtom(q("stock", sector="tech")), recorder(fired, "b")))
        sim, node = node_with([so])
        node.raise_local(d("stock", 1, sym="ACME", sector="tech"))
        sim.run()
        assert fired == ["a", "b"]
        assert node.stats.firings_suppressed == 0


class TestGroupStructure:
    def test_groups_reject_nested_subsets(self):
        pg = priority_group("pg")
        with pytest.raises(RuleError, match="rules only"):
            pg.subset("inner")
        with pytest.raises(RuleError, match="rules only"):
            pg.first_match("inner")

    def test_ruleset_subset_accessor_rejects_group_names(self):
        rs = RuleSet("app")
        rs.priority_group("overlap")
        with pytest.raises(RuleError, match="priority"):
            rs.subset("overlap")
        with pytest.raises(RuleError, match="different kind"):
            rs.first_match("overlap")

    def test_nested_group_qualifies_and_compiles(self):
        rs = RuleSet("app")
        fm = rs.first_match("overlap")
        fm.add(eca("pin", EAtom(q("a", sym="S")), recorder([], "p")))
        fm.add(eca("any", EAtom(q("a", Var("X"))), recorder([], "a")))
        rs.add(eca("plain", EAtom(q("b", Var("X"))), recorder([], "b")))
        specs = compile_group_specs([rs])
        assert set(specs) == {"app/overlap/pin", "app/overlap/any"}
        gid, kind, prec = specs["app/overlap/pin"]
        assert (gid, kind) == ("app/overlap", "first_match")
        assert prec > specs["app/overlap/any"][2]

    def test_groups_resolve_within_not_across(self):
        """Two independent groups answering one event each fire their own
        winner — suppression never leaks across group boundaries."""
        fired = []
        fm1 = first_match("fm1")
        fm1.add(eca("a", EAtom(q("stock", Var("X"))), recorder(fired, "fm1/a")))
        fm1.add(eca("b", EAtom(q("stock", Var("X"))), recorder(fired, "fm1/b")))
        fm2 = first_match("fm2")
        fm2.add(eca("a", EAtom(q("stock", Var("X"))), recorder(fired, "fm2/a")))
        sim, node = node_with([fm1, fm2])
        node.raise_local(d("stock", 1))
        sim.run()
        assert fired == ["fm1/a", "fm2/a"]

    def test_ungrouped_rules_interleave_with_group_winners(self):
        fired = []
        fm = first_match("fm")
        fm.add(eca("win", EAtom(q("stock", Var("X"))), recorder(fired, "win")))
        fm.add(eca("lose", EAtom(q("stock", Var("X"))), recorder(fired, "lose")))
        plain = eca("plain", EAtom(q("stock", Var("X"))), recorder(fired, "plain"))
        sim, node = node_with([plain, fm])
        node.raise_local(d("stock", 1))
        sim.run()
        # Singles activate before rule sets; the winner fires after the
        # ungrouped answers of the instant (deferred resolution).
        assert fired == ["plain", "win"]

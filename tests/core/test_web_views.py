"""Tests for deductive Web views attached to resources (Thesis 9)."""

import pytest

from repro.core import PyAction, QueryCond, ReactiveEngine, eca
from repro.deductive import DeductiveRule, Match, Program
from repro.events.queries import EAtom
from repro.terms import Var, c, parse_data, parse_query, q
from repro.web import Simulation

URI = "http://org.example/staff"

# reports-to is extensional; chain-of-command is its transitive closure.
CHAIN_RULES = Program([
    DeductiveRule(
        c("chain", c("junior", Var("A")), c("senior", Var("B"))),
        (Match(parse_query("reports-to{{ junior[var A], senior[var B] }}")),),
    ),
    DeductiveRule(
        c("chain", c("junior", Var("A")), c("senior", Var("C"))),
        (
            Match(parse_query("reports-to{{ junior[var A], senior[var B] }}")),
            Match(parse_query("chain{{ junior[var B], senior[var C] }}")),
        ),
    ),
])


def org_world():
    sim = Simulation(latency=0.0)
    node = sim.node("http://org.example")
    node.put(URI, parse_data(
        "staff{ reports-to{ junior[\"ann\"], senior[\"bo\"] },"
        " reports-to{ junior[\"bo\"], senior[\"cy\"] } }"
    ))
    engine = ReactiveEngine(node)
    engine.define_web_views(URI, CHAIN_RULES)
    return sim, node, engine


class TestWebViews:
    def test_condition_sees_derived_facts(self):
        sim, node, engine = org_world()
        approvals = []
        engine.install(eca(
            "needs-approval",
            EAtom(parse_query("expense{{ by[var A] }}")),
            PyAction(lambda n, b: approvals.append((b["A"], b["S"]))),
            if_=QueryCond(URI, parse_query("chain{{ junior[var A], senior[var S] }}")),
        ))
        node.raise_local(parse_data('expense{ by["ann"] }'))
        sim.run()
        # ann's chain of command includes bo directly and cy transitively.
        assert set(approvals) == {("ann", "bo"), ("ann", "cy")}

    def test_extensional_facts_still_visible(self):
        sim, node, engine = org_world()
        from repro.core import conditions as cond
        from repro.terms import Bindings

        result = cond.evaluate(
            QueryCond(URI, parse_query("reports-to{{ junior[var A] }}")),
            node, Bindings(), views=engine._web_views,
        )
        assert {b["A"] for b in result} == {"ann", "bo"}

    def test_view_invalidated_on_update(self):
        sim, node, engine = org_world()
        from repro.core import conditions as cond
        from repro.terms import Bindings

        query = QueryCond(URI, parse_query('chain{{ junior["cy"], senior[var S] }}'))
        assert cond.evaluate(query, node, Bindings(), views=engine._web_views) == []
        # cy gets a new boss: the derived chain must reflect it.
        node.put(URI, parse_data(
            "staff{ reports-to{ junior[\"ann\"], senior[\"bo\"] },"
            " reports-to{ junior[\"bo\"], senior[\"cy\"] },"
            " reports-to{ junior[\"cy\"], senior[\"di\"] } }"
        ))
        result = cond.evaluate(query, node, Bindings(), views=engine._web_views)
        assert {b["S"] for b in result} == {"di"}
        # and ann's chain now reaches di transitively.
        long_chain = QueryCond(URI, parse_query(
            'chain{{ junior["ann"], senior["di"] }}'))
        assert cond.evaluate(long_chain, node, Bindings(), views=engine._web_views)

    def test_materialisation_is_lazy_and_cached(self):
        sim, node, engine = org_world()
        state = engine._web_views[URI]
        assert state.evaluator is None  # nothing materialised yet
        from repro.core import conditions as cond
        from repro.terms import Bindings

        cond.evaluate(QueryCond(URI, parse_query("chain")), node, Bindings(),
                      views=engine._web_views)
        first = state.evaluator
        assert first is not None
        cond.evaluate(QueryCond(URI, parse_query("chain")), node, Bindings(),
                      views=engine._web_views)
        assert state.evaluator is first  # cached between queries

    def test_recursive_views_allowed_for_web_data(self):
        # Unlike event views, persistent-data views may recurse.
        assert CHAIN_RULES.is_recursive()

"""Unit tests for the reactive engine: rules, conditions, actions, firing."""

import pytest

from repro.core import (
    Alternative,
    AndCond,
    CallProcedure,
    CompareCond,
    Conditional,
    ECARule,
    InstallRule,
    NotCond,
    Persist,
    PutResource,
    PyAction,
    QueryCond,
    Raise,
    ReactiveEngine,
    RuleSet,
    Sequence,
    TrueCond,
    Update,
    eca,
    ecaa,
    ecna,
)
from repro.core.meta import rule_to_term
from repro.deductive import DeductiveRule, Match, Program
from repro.errors import ActionError, RecursionRejected, RuleError
from repro.events.queries import EAtom
from repro.terms import Var, c, d, parse_construct, parse_data, parse_query, q
from repro.web import Simulation


def setup_pair(latency=0.01, **engine_kwargs):
    sim = Simulation(latency=latency)
    a = sim.node("http://a.example")
    b = sim.node("http://b.example")
    engine_a = ReactiveEngine(a, **engine_kwargs)
    engine_b = ReactiveEngine(b)
    return sim, a, b, engine_a, engine_b


class TestRuleForms:
    def test_rule_needs_name_and_action(self):
        with pytest.raises(RuleError):
            ECARule("", EAtom(q("a")), ((None, Raise("http://x", c("y"))),))
        with pytest.raises(RuleError):
            ECARule("r", EAtom(q("a")), ())

    def test_bad_firing_mode(self):
        with pytest.raises(RuleError):
            eca("r", EAtom(q("a")), Raise("http://x", c("y")), firing="sometimes")

    def test_ecaa_accessor(self):
        rule = ecaa("r", EAtom(q("a")), TrueCond(), Raise("http://x", c("y")),
                    Raise("http://x", c("z")))
        assert rule.is_ecaa

    def test_event_query_validated(self):
        from repro.errors import EventQueryError
        from repro.events.queries import ENot, ESeq

        with pytest.raises(EventQueryError):
            eca("r", ESeq(ENot(q("n")), EAtom(q("a"))), Raise("http://x", c("y")))


class TestBasicFiring:
    def test_event_triggers_action(self):
        sim, a, b, engine_a, engine_b = setup_pair()
        hits = []
        engine_a.install(eca("t", EAtom(parse_query("ping{{ n[var N] }}")),
                             PyAction(lambda node, b_: hits.append(b_["N"]))))
        a.raise_event(a.uri, parse_data("ping{ n[7] }"))
        sim.run()
        assert hits == [7]

    def test_condition_gates_action(self):
        sim, a, b, engine_a, engine_b = setup_pair()
        a.put("http://a.example/flags", parse_data("flags{ enabled }"))
        hits = []
        engine_a.install(eca(
            "gated", EAtom(parse_query("go")),
            PyAction(lambda node, b_: hits.append(1)),
            if_=QueryCond("http://a.example/flags", parse_query("flags{{ enabled }}")),
        ))
        a.raise_event(a.uri, parse_data("go"))
        sim.run()
        assert hits == [1]
        a.put("http://a.example/flags", parse_data("flags{}"))
        a.raise_event(a.uri, parse_data("go"))
        sim.run()
        assert hits == [1]  # condition now fails

    def test_ecaa_else_branch(self):
        sim, a, b, engine_a, engine_b = setup_pair()
        a.put("http://a.example/flags", parse_data("flags{}"))
        hits = []
        engine_a.install(ecaa(
            "branching", EAtom(parse_query("go")),
            QueryCond("http://a.example/flags", parse_query("flags{{ enabled }}")),
            PyAction(lambda n, b_: hits.append("then")),
            PyAction(lambda n, b_: hits.append("else")),
        ))
        a.raise_event(a.uri, parse_data("go"))
        sim.run()
        assert hits == ["else"]

    def test_ecna_first_matching_branch(self):
        sim, a, b, engine_a, engine_b = setup_pair()
        hits = []
        engine_a.install(ecna(
            "tiers", EAtom(parse_query("order{{ total[var T] }}")),
            [
                (CompareCond(Var("T"), ">", 100), PyAction(lambda n, b_: hits.append("big"))),
                (CompareCond(Var("T"), ">", 10), PyAction(lambda n, b_: hits.append("mid"))),
            ],
            else_do=PyAction(lambda n, b_: hits.append("small")),
        ))
        for total in (500, 50, 5):
            a.raise_event(a.uri, parse_data(f"order{{ total[{total}] }}"))
        sim.run()
        assert hits == ["big", "mid", "small"]

    def test_firing_all_vs_first(self):
        sim, a, b, engine_a, engine_b = setup_pair()
        all_hits, first_hits = [], []
        engine_a.install(eca("every", EAtom(parse_query("batch{{ item[var I] }}")),
                             PyAction(lambda n, b_: all_hits.append(b_["I"]))))
        engine_a.install(eca("once", EAtom(parse_query("batch{{ item[var I] }}")),
                             PyAction(lambda n, b_: first_hits.append(b_["I"])),
                             firing="first"))
        a.raise_event(a.uri, parse_data("batch{ item[1], item[2], item[3] }"))
        sim.run()
        assert sorted(all_hits) == [1, 2, 3]
        assert len(first_hits) == 1

    def test_event_bindings_parameterise_condition(self):
        # Thesis 7: the event's variable joins against the resource.
        sim, a, b, engine_a, engine_b = setup_pair()
        a.put("http://a.example/stock",
              parse_data('stock{ item{ id["x"], qty[5] } }'))
        seen = []
        engine_a.install(eca(
            "join", EAtom(parse_query("order{{ id[var I] }}")),
            PyAction(lambda n, b_: seen.append((b_["I"], b_["Q"]))),
            if_=QueryCond("http://a.example/stock",
                          parse_query("stock{{ item{{ id[var I], qty[var Q] }} }}")),
        ))
        a.raise_event(a.uri, parse_data('order{ id["x"] }'))
        a.raise_event(a.uri, parse_data('order{ id["y"] }'))
        sim.run()
        assert seen == [("x", 5)]


class TestConditions:
    def test_and_or_not(self):
        sim, a, b, engine_a, engine_b = setup_pair()
        a.put("http://a.example/d", parse_data("d{ x[1], y[2] }"))
        from repro.core import conditions as cond_mod

        node = a
        has_x = QueryCond("http://a.example/d", parse_query("d{{ x[var X] }}"))
        has_z = QueryCond("http://a.example/d", parse_query("d{{ z[var Z] }}"))
        from repro.terms import Bindings

        assert cond_mod.evaluate(AndCond(has_x, NotCond(has_z)), node, Bindings())
        assert not cond_mod.evaluate(AndCond(has_x, has_z), node, Bindings())
        assert cond_mod.evaluate(NotCond(has_z), node, Bindings())
        both = cond_mod.evaluate(AndCond(has_x,
                                         QueryCond("http://a.example/d",
                                                   parse_query("d{{ y[var Y] }}"))),
                                 node, Bindings())
        assert both[0].as_dict() == {"X": 1, "Y": 2}

    def test_remote_condition_accounted(self):
        sim, a, b, engine_a, engine_b = setup_pair()
        b.put("http://b.example/doc", parse_data("doc{ ok }"))
        hits = []
        engine_a.install(eca(
            "remote", EAtom(parse_query("check")),
            PyAction(lambda n, b_: hits.append(1)),
            if_=QueryCond("http://b.example/doc", parse_query("doc{{ ok }}")),
        ))
        a.raise_event(a.uri, parse_data("check"))
        sim.run()
        assert hits == [1]
        # 1 event message + request + response
        assert sim.stats.messages == 3

    def test_uri_from_event_binding(self):
        # The event names the resource the condition must consult.
        sim, a, b, engine_a, engine_b = setup_pair()
        b.put("http://b.example/doc", parse_data("doc{ ok }"))
        hits = []
        engine_a.install(eca(
            "dynamic-uri", EAtom(parse_query("check{{ at[var U] }}")),
            PyAction(lambda n, b_: hits.append(b_["U"])),
            if_=QueryCond(Var("U"), parse_query("doc{{ ok }}")),
        ))
        a.raise_event(a.uri, parse_data('check{ at["http://b.example/doc"] }'))
        sim.run()
        assert hits == ["http://b.example/doc"]


class TestActions:
    def test_update_insert_delete_replace(self):
        sim, a, b, engine_a, engine_b = setup_pair()
        a.put("http://a.example/doc", parse_data("doc{ n[1] }"))
        engine_a.execute(
            Update("http://a.example/doc", "replace", parse_query("n[var X]"),
                   parse_construct("n[add(var X, 1)]")),
            parse_bindings(),
        )
        assert a.get("http://a.example/doc").first("n").value == 2
        engine_a.execute(
            Update("http://a.example/doc", "insert", parse_query("doc"),
                   parse_construct("tag")),
            parse_bindings(),
        )
        assert a.get("http://a.example/doc").first("tag") is not None
        engine_a.execute(
            Update("http://a.example/doc", "delete", parse_query("tag")),
            parse_bindings(),
        )
        assert a.get("http://a.example/doc").first("tag") is None

    def test_remote_update_rejected(self):
        sim, a, b, engine_a, engine_b = setup_pair()
        b.put("http://b.example/doc", parse_data("doc{}"))
        with pytest.raises(ActionError):
            engine_a.execute(
                Update("http://b.example/doc", "insert", parse_query("doc"),
                       parse_construct("x")),
                parse_bindings(),
            )

    def test_sequence_atomic_rollback(self):
        sim, a, b, engine_a, engine_b = setup_pair()
        a.put("http://a.example/doc", parse_data("doc{ n[1] }"))
        action = Sequence(
            Update("http://a.example/doc", "replace", parse_query("n[var X]"),
                   parse_construct("n[9]")),
            PyAction(lambda n, b_: (_ for _ in ()).throw(ActionError("fail")), "boom"),
        )
        with pytest.raises(ActionError):
            engine_a.execute(action, parse_bindings())
        assert a.get("http://a.example/doc").first("n").value == 1  # rolled back
        assert engine_a.stats.rollbacks == 1

    def test_nonatomic_sequence_keeps_partial(self):
        sim, a, b, engine_a, engine_b = setup_pair()
        a.put("http://a.example/doc", parse_data("doc{ n[1] }"))
        action = Sequence(
            Update("http://a.example/doc", "replace", parse_query("n[var X]"),
                   parse_construct("n[9]")),
            PyAction(lambda n, b_: (_ for _ in ()).throw(ActionError("fail")), "boom"),
            atomic=False,
        )
        with pytest.raises(ActionError):
            engine_a.execute(action, parse_bindings())
        assert a.get("http://a.example/doc").first("n").value == 9

    def test_alternative_falls_through(self):
        sim, a, b, engine_a, engine_b = setup_pair()
        hits = []
        action = Alternative(
            PyAction(lambda n, b_: (_ for _ in ()).throw(ActionError("no")), "first"),
            PyAction(lambda n, b_: hits.append("second")),
        )
        engine_a.execute(action, parse_bindings())
        assert hits == ["second"]

    def test_alternative_all_fail(self):
        sim, a, b, engine_a, engine_b = setup_pair()
        action = Alternative(
            PyAction(lambda n, b_: (_ for _ in ()).throw(ActionError("x")), "a"),
            PyAction(lambda n, b_: (_ for _ in ()).throw(ActionError("y")), "b"),
        )
        with pytest.raises(ActionError):
            engine_a.execute(action, parse_bindings())

    def test_conditional_action(self):
        sim, a, b, engine_a, engine_b = setup_pair()
        a.put("http://a.example/d", parse_data("d{ on }"))
        hits = []
        engine_a.execute(
            Conditional(
                QueryCond("http://a.example/d", parse_query("d{{ on }}")),
                PyAction(lambda n, b_: hits.append("then")),
                PyAction(lambda n, b_: hits.append("else")),
            ),
            parse_bindings(),
        )
        assert hits == ["then"]

    def test_persist_creates_and_appends(self):
        sim, a, b, engine_a, engine_b = setup_pair()
        engine_a.execute(Persist("http://a.example/log", parse_construct("entry[1]")),
                         parse_bindings())
        engine_a.execute(Persist("http://a.example/log", parse_construct("entry[2]")),
                         parse_bindings())
        log = a.get("http://a.example/log")
        assert len(log.all("entry")) == 2

    def test_procedure_call_scoping(self):
        sim, a, b, engine_a, engine_b = setup_pair()
        seen = []
        engine_a.define_procedure(
            "notify", ("WHO",),
            PyAction(lambda n, b_: seen.append(sorted(b_.as_dict().items()))),
        )
        engine_a.execute(
            CallProcedure("notify", (("WHO", parse_construct('"franz"')),)),
            parse_bindings(X=1),
        )
        # Procedure body sees only its parameters, not the caller's X.
        assert seen == [[("WHO", "franz")]]

    def test_procedure_missing_arg(self):
        sim, a, b, engine_a, engine_b = setup_pair()
        engine_a.define_procedure("p", ("A",), PyAction(lambda n, b_: None))
        with pytest.raises(ActionError):
            engine_a.execute(CallProcedure("p", ()), parse_bindings())

    def test_install_rule_action(self):
        sim, a, b, engine_a, engine_b = setup_pair()
        hits = []
        engine_a.define_procedure("hit", (), PyAction(lambda n, b_: hits.append(1)))
        new_rule = eca("dynamic", EAtom(parse_query("go")), CallProcedure("hit", ()))
        term = rule_to_term(new_rule)
        engine_a.execute(InstallRule(term), parse_bindings())
        assert "dynamic" in engine_a.rules()
        a.raise_event(a.uri, parse_data("go"))
        sim.run()
        assert hits == [1]


class TestRuleSets:
    def test_scoped_names(self):
        rules = RuleSet("app")
        payments = rules.subset("payments")
        payments.add(eca("card", EAtom(q("pay")), PyAction(lambda n, b_: None)))
        shipping = rules.subset("shipping")
        shipping.add(eca("card", EAtom(q("ship")), PyAction(lambda n, b_: None)))
        names = [name for name, _, _ in rules.qualified()]
        assert names == ["app/payments/card", "app/shipping/card"]

    def test_disable_subtree(self):
        sim, a, b, engine_a, engine_b = setup_pair()
        hits = []
        rules = RuleSet("app")
        sub = rules.subset("extras")
        sub.add(eca("r", EAtom(parse_query("go")), PyAction(lambda n, b_: hits.append(1))))
        engine_a.install(rules)
        a.raise_event(a.uri, parse_data("go"))
        sim.run()
        assert hits == [1]
        sub.enabled = False
        engine_a.refresh()
        a.raise_event(a.uri, parse_data("go"))
        sim.run()
        assert hits == [1]

    def test_duplicate_names_rejected(self):
        rules = RuleSet("app")
        rules.add(eca("r", EAtom(q("a")), PyAction(lambda n, b_: None)))
        with pytest.raises(RuleError):
            rules.add(eca("r", EAtom(q("b")), PyAction(lambda n, b_: None)))

    def test_find_and_remove(self):
        rules = RuleSet("app")
        sub = rules.subset("s")
        rule = eca("r", EAtom(q("a")), PyAction(lambda n, b_: None))
        sub.add(rule)
        assert rules.find("s/r") is rule
        rules.remove("s/r")
        assert "s/r" not in rules


class TestDeductiveEventViews:
    def test_derived_events_trigger_rules(self):
        views = Program(
            [DeductiveRule(
                c("high-value-order", Var("I")),
                (Match(parse_query("order{{ id[var I], total[var T -> > 100] }}")),),
            )],
            allow_recursion=False,
        )
        sim = Simulation(latency=0.01)
        a = sim.node("http://a.example")
        engine = ReactiveEngine(a, event_views=views)
        hits = []
        engine.install(eca("vip", EAtom(parse_query("high-value-order[[ var I ]]")),
                           PyAction(lambda n, b_: hits.append(b_["I"]))))
        a.raise_event(a.uri, parse_data('order{ id["big"], total[500] }'))
        a.raise_event(a.uri, parse_data('order{ id["small"], total[5] }'))
        sim.run()
        assert hits == ["big"]
        assert engine.stats.derived_events == 1

    def test_recursive_views_rejected(self):
        looping = [
            DeductiveRule(c("a", Var("X")), (Match(q("b", Var("X"))),)),
            DeductiveRule(c("b", Var("X")), (Match(q("a", Var("X"))),)),
        ]
        sim = Simulation()
        node = sim.node("http://a.example")
        with pytest.raises(RecursionRejected):
            ReactiveEngine(node, event_views=Program(looping))


class TestAbsenceScheduling:
    def test_deadline_fires_via_scheduler(self):
        from repro.events.queries import ENot, ESeq, EWithin

        sim, a, b, engine_a, engine_b = setup_pair(latency=0.0)
        hits = []
        engine_a.install(eca(
            "escalate",
            EWithin(ESeq(EAtom(parse_query("ticket{{ id[var T] }}")),
                         ENot(parse_query("reply{{ id[var T] }}"))), 5.0),
            PyAction(lambda n, b_: hits.append((b_["T"], n.now))),
        ))
        a.raise_event(a.uri, parse_data("ticket{ id[1] }"))
        sim.scheduler.at(2.0, lambda: a.raise_event(a.uri, parse_data("reply{ id[1] }")))
        a.raise_event(a.uri, parse_data("ticket{ id[2] }"))
        sim.run()
        # ticket 1 was answered; ticket 2 escalates at its deadline (t=5).
        assert hits == [(2, 5.0)]


def parse_bindings(**values):
    from repro.terms import Bindings

    return Bindings.of(**values)

"""Tests for the thesis-specific modules: production baseline (T1),
identity monitoring (T10), meta-programming (T11), and AAA (T12)."""

import pytest

from repro.core import (
    ProductionEngine,
    ProductionRule,
    PyAction,
    QueryCond,
    Raise,
    ReactiveEngine,
    Sequence,
    Update,
    derive_eca,
    eca,
    ecaa,
    ecna,
)
from repro.core.aaa import Accountant, Authenticator, Authorizer, Certificate
from repro.core.identity import ChangeMonitor
from repro.core.meta import rule_to_term, term_to_rule
from repro.errors import (
    AuthenticationError,
    AuthorizationError,
    MetaError,
)
from repro.events.queries import EAtom, ECount, ENot, ESeq, EWithin, EAggregate
from repro.core.conditions import AndCond, CompareCond, NotCond, OrCond, TrueCond
from repro.core.actions import (
    Alternative,
    CallProcedure,
    Conditional,
    DeleteResource,
    InstallRule,
    Persist,
    PutResource,
    UninstallRule,
)
from repro.terms import Var, c, d, parse_construct, parse_data, parse_query, q
from repro.web import Simulation


def one_node():
    sim = Simulation(latency=0.0)
    node = sim.node("http://n.example")
    return sim, node, ReactiveEngine(node)


class TestProductionBaseline:
    """Thesis 1 / footnote 4: CA rules vs ECA rules."""

    def _engine(self, refractory):
        sim, node, engine = one_node()
        node.put("http://n.example/basket",
                 parse_data('basket{ total[200] }'))
        fired = []
        production = ProductionEngine(node, engine.execute, refractory=refractory)
        production.install(ProductionRule(
            "discount",
            QueryCond("http://n.example/basket",
                      parse_query("basket{{ total[var T -> > 100] }}")),
            PyAction(lambda n, b_: fired.append(b_["T"])),
        ))
        return sim, node, production, fired

    def test_naive_refires_while_condition_holds(self):
        sim, node, production, fired = self._engine(refractory=False)
        for _ in range(5):
            production.run_cycle()
        assert len(fired) == 5  # fires on every cycle: the duplicate problem

    def test_refractory_fires_once_per_becoming_true(self):
        sim, node, production, fired = self._engine(refractory=True)
        for _ in range(5):
            production.run_cycle()
        assert len(fired) == 1
        # Condition goes false, then true again: fires anew.
        node.put("http://n.example/basket", parse_data("basket{ total[50] }"))
        production.run_cycle()
        node.put("http://n.example/basket", parse_data("basket{ total[300] }"))
        production.run_cycle()
        assert len(fired) == 2

    def test_production_misses_transient_condition(self):
        # The condition becomes true and false again between cycles.
        sim, node, production, fired = self._engine(refractory=True)
        node.put("http://n.example/basket", parse_data("basket{ total[50] }"))
        production.run_cycle()
        node.put("http://n.example/basket", parse_data("basket{ total[500] }"))
        node.put("http://n.example/basket", parse_data("basket{ total[50] }"))
        production.run_cycle()
        assert fired == []  # missed entirely: ECA would have seen the event

    def test_condition_evaluations_counted(self):
        sim, node, production, fired = self._engine(refractory=True)
        for _ in range(10):
            production.run_cycle()
        assert production.condition_evaluations == 10

    def test_derive_eca_fires_on_change_events(self):
        sim, node, engine = one_node()
        node.put("http://n.example/basket", parse_data("basket{ total[200] }"))
        fired = []
        rule = ProductionRule(
            "discount",
            QueryCond("http://n.example/basket",
                      parse_query("basket{{ total[var T -> > 100] }}")),
            PyAction(lambda n, b_: fired.append(b_["T"])),
        )
        engine.install(derive_eca(rule, ["resource-changed"]))
        node.raise_local(d("resource-changed", d("uri", "http://n.example/basket")))
        sim.run()
        assert fired == [200]


class TestIdentity:
    """Thesis 10: surrogate identity survives value changes."""

    def _monitored(self, mode):
        sim, node, engine = one_node()
        uri = "http://n.example/articles"
        node.put(uri, parse_data(
            'articles{ article{ id["a1"], text["old"] }, article{ id["a2"], text["x"] } }'
        ))
        events = []
        node.on_event(lambda e: events.append(e.term))
        monitor = ChangeMonitor(node, uri, parse_query("article"), mode=mode)
        return sim, node, uri, monitor, events

    def test_surrogate_reports_change(self):
        sim, node, uri, monitor, events = self._monitored("surrogate")
        node.put(uri, parse_data(
            'articles{ article{ id["a1"], text["NEW"] }, article{ id["a2"], text["x"] } }'
        ))
        sim.run()  # change events drain through the node's inbox
        labels = [t.label for t in events]
        assert labels == ["item-changed"]
        assert monitor.stats.identities_preserved == 1

    def test_extensional_loses_identity(self):
        sim, node, uri, monitor, events = self._monitored("extensional")
        node.put(uri, parse_data(
            'articles{ article{ id["a1"], text["NEW"] }, article{ id["a2"], text["x"] } }'
        ))
        sim.run()  # change events drain through the node's inbox
        labels = sorted(t.label for t in events)
        assert labels == ["item-deleted", "item-inserted"]
        assert monitor.stats.identities_lost == 1

    def test_surrogate_oid_stable_across_changes(self):
        sim, node, uri, monitor, events = self._monitored("surrogate")
        node.put(uri, parse_data(
            'articles{ article{ id["a1"], text["v2"] }, article{ id["a2"], text["x"] } }'
        ))
        node.put(uri, parse_data(
            'articles{ article{ id["a1"], text["v3"] }, article{ id["a2"], text["x"] } }'
        ))
        sim.run()  # change events drain through the node's inbox
        oids = [t.first("oid").value for t in events if t.label == "item-changed"]
        assert len(oids) == 2 and oids[0] == oids[1]

    def test_insert_and_delete_reported(self):
        sim, node, uri, monitor, events = self._monitored("surrogate")
        node.put(uri, parse_data('articles{ article{ id["a1"], text["old"] } }'))
        sim.run()  # change events drain through the node's inbox
        assert [t.label for t in events] == ["item-deleted"]
        events.clear()
        node.put(uri, parse_data(
            'articles{ article{ id["a1"], text["old"] }, article{ id["a9"], text["new"] } }'
        ))
        sim.run()
        assert [t.label for t in events] == ["item-inserted"]

    def test_positional_fallback_without_keys(self):
        sim, node, engine = one_node()
        uri = "http://n.example/list"
        node.put(uri, parse_data("list{ entry{ 1 } }"))
        events = []
        node.on_event(lambda e: events.append(e.term.label))
        ChangeMonitor(node, uri, parse_query("entry"), mode="surrogate", key_label=None)
        node.put(uri, parse_data("list{ entry{ 2 } }"))
        sim.run()  # change events drain through the node's inbox
        assert events == ["item-changed"]


class TestMetaEncoding:
    """Thesis 11: every serialisable rule round-trips through terms."""

    RULES = [
        eca("simple", EAtom(parse_query("a{{ var X }}"), alias="E"),
            Raise("http://x.example", parse_construct("out{ var X }"))),
        ecaa("branchy", EAtom(parse_query("b")),
             QueryCond("http://n.example/d", parse_query("d{{ ok }}")),
             PutResource("http://n.example/r", parse_construct("r{ 1 }")),
             DeleteResource("http://n.example/r")),
        ecna("tiers",
             EWithin(ESeq(EAtom(parse_query("a")), ENot(parse_query("n")),
                          EAtom(parse_query("b"))), 5.0),
             [
                 (CompareCond(Var("T"), ">", 10),
                  Sequence(Persist("http://n.example/log", parse_construct("e[var T]")),
                           CallProcedure("p", (("A", parse_construct("var T")),)))),
                 (NotCond(TrueCond()),
                  Alternative(Raise("http://x.example", parse_construct("q{}")),
                              UninstallRule("tiers"))),
             ],
             else_do=Conditional(
                 OrCond(TrueCond(), AndCond(TrueCond())),
                 Update(Var("U"), "replace", parse_query("n[var Q]"),
                        parse_construct("n[add(var Q, 1)]")),
                 InstallRule(Var("R")),
             ),
             firing="first"),
        eca("counted", ECount(parse_query("outage{{ s[var S] }}"), 3, 60.0, ("S",)),
            Raise(Var("S"), parse_construct("alarm{ var S }"))),
        eca("agg", EAggregate(parse_query("p{{ v[var P] }}"), "P", "avg", "A",
                              size=5, predicate=("rise%", 5.0)),
            Raise("http://x.example", parse_construct("avg-alert{ var A }"))),
    ]

    @pytest.mark.parametrize("rule", RULES, ids=lambda r: r.name)
    def test_round_trip(self, rule):
        assert term_to_rule(rule_to_term(rule)) == rule

    def test_pyaction_refused(self):
        rule = eca("local", EAtom(q("a")), PyAction(lambda n, b: None))
        with pytest.raises(MetaError):
            rule_to_term(rule)

    def test_malformed_term_refused(self):
        with pytest.raises(MetaError):
            term_to_rule(d("not-a-rule"))
        with pytest.raises(MetaError):
            term_to_rule(d("eca-rule"))  # no name, no parts


class TestAAA:
    """Thesis 12: authentication, authorization, accounting."""

    def test_token_authentication(self):
        auth = Authenticator()
        auth.register("franz", "s3cret")
        assert auth.authenticate_token("franz", "s3cret") == "franz"
        with pytest.raises(AuthenticationError):
            auth.authenticate_token("franz", "wrong")
        with pytest.raises(AuthenticationError):
            auth.authenticate_token("unknown", "s3cret")

    def test_certificate_authentication(self):
        auth = Authenticator()
        auth.trust_authority("http://bbb.example")
        certificate = Certificate("fussbaelle.biz", "http://bbb.example", "member")
        assert auth.authenticate_certificate(certificate) == "fussbaelle.biz"
        rogue = Certificate("evil.biz", "http://unknown.example")
        with pytest.raises(AuthenticationError):
            auth.authenticate_certificate(rogue)

    def test_credential_terms(self):
        auth = Authenticator()
        auth.register("franz", "s3cret")
        token = d("token", d("principal", "franz"), d("secret", "s3cret"))
        assert auth.authenticate_term(token) == "franz"
        auth.trust_authority("http://bbb.example")
        certificate = Certificate("shop", "http://bbb.example").to_term()
        assert auth.authenticate_term(certificate) == "shop"
        with pytest.raises(AuthenticationError):
            auth.authenticate_term(d("password", "x"))

    def test_authorization_grant_deny(self):
        authz = Authorizer()
        authz.grant("franz", "read", "http://n.example/doc")
        assert authz.allowed("franz", "read", "http://n.example/doc")
        assert not authz.allowed("franz", "write", "http://n.example/doc")
        assert not authz.allowed("anon", "read", "http://n.example/doc")
        authz.deny("franz", "read", "http://n.example/doc")
        assert not authz.allowed("franz", "read", "http://n.example/doc")

    def test_wildcard_grants(self):
        authz = Authorizer()
        authz.grant("*", "read", "http://n.example/public")
        assert authz.allowed("anyone", "read", "http://n.example/public")
        authz.grant("admin", "*", "*")
        assert authz.allowed("admin", "write", "http://n.example/anything")

    def test_node_get_guard(self):
        sim = Simulation()
        server = sim.node("http://server.example")
        client = sim.node("http://client.example")
        server.put("http://server.example/private", d("secret"))
        authz = Authorizer()
        authz.guard_node_gets(server)
        with pytest.raises(AuthorizationError):
            client.get("http://server.example/private")
        authz.grant("http://client.example", "read", "http://server.example/private")
        assert client.get("http://server.example/private") == d("secret")

    def test_accounting_double_reactivity(self):
        sim, node, engine = one_node()
        accountant = Accountant(engine)
        accountant.attach()
        # The service rule reacts to orders; metering raises service-request
        # events that the accounting rule (a second, orthogonal layer of
        # reactivity) turns into a persistent log.
        engine.install(eca(
            "serve", EAtom(parse_query("order{{ by[var P] }}")),
            PyAction(lambda n, b_: accountant.meter(b_["P"], "order", 2.0)),
        ))
        node.raise_event(node.uri, parse_data('order{ by["franz"] }'))
        node.raise_event(node.uri, parse_data('order{ by["franz"] }'))
        node.raise_event(node.uri, parse_data('order{ by["ida"] }'))
        sim.run()
        assert accountant.entries() == 3
        assert accountant.bill() == {"franz": 4.0, "ida": 2.0}

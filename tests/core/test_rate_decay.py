"""EWMA label rates: ``EngineConfig(rate_halflife=...)``.

The engine's per-label rates used to be cumulative counters: every event
ever seen kept its full weight forever, so a workload whose skew
*reversed* mid-run could never reorder a freshly-built join plan — the
stale phase outvoted the live one.  ``rate_halflife`` makes the counters
exponentially-decayed masses in simulated time.  The regression test
here pins the observable difference: after a skew reversal, a decayed
engine hands a newly-installed tree rule the *current* rarest-first
order, while the legacy cumulative engine (still the default,
bit-for-bit unchanged) keeps the stale one.
"""

import pytest

from repro import EngineConfig, Simulation
from repro.core import eca
from repro.core.actions import PyAction
from repro.errors import RuleError
from repro.events import EAtom, ESeq, EWithin
from repro.terms import LabelVar, d, q


def _node(sim, **config_kwargs):
    node = sim.reactive_node("http://d.example",
                             config=EngineConfig(**config_kwargs))
    # A wildcard observer so every raised event reaches the engine's
    # dispatch path (label rates are only accounted for drained events).
    node.install(eca("wild", EAtom(q(LabelVar("L"))),
                     PyAction(lambda n, b: None, "noop")))
    return node


def _schedule(sim, node, stream):
    for t, label in stream:
        sim.scheduler.at(t, lambda lab=label: node.raise_local(d(lab)))


class TestConfigSurface:
    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_halflife_must_be_positive(self, bad):
        with pytest.raises(RuleError, match="rate_halflife"):
            EngineConfig(rate_halflife=bad)

    def test_none_is_the_legacy_cumulative_path(self):
        sim = Simulation(latency=0.0)
        node = _node(sim)
        # Not a decayed copy: the very same dict the engine mutates, so
        # the legacy path has zero new allocations or arithmetic.
        assert node.engine.label_rates() is node.engine._label_rates


class TestDecayArithmetic:
    def test_mass_halves_per_halflife(self):
        sim = Simulation(latency=0.0)
        node = _node(sim, rate_halflife=2.0)
        _schedule(sim, node, [(0.0, "a"), (2.0, "b"), (4.0, "c")])
        sim.run()
        rates = node.engine.label_rates()
        # a@0 decayed across two halflives, b@2 across one, c@4 fresh.
        assert rates["a"] == pytest.approx(0.25)
        assert rates["b"] == pytest.approx(0.5)
        assert rates["c"] == pytest.approx(1.0)

    def test_repeat_events_accumulate_then_decay(self):
        sim = Simulation(latency=0.0)
        node = _node(sim, rate_halflife=2.0)
        _schedule(sim, node, [(0.0, "a"), (0.0, "a"), (2.0, "a")])
        sim.run()
        # (1 + 1) halved once, plus the fresh arrival.
        assert node.engine.label_rates()["a"] == pytest.approx(2.0)

    def test_cumulative_counters_never_decay(self):
        sim = Simulation(latency=0.0)
        node = _node(sim)  # rate_halflife=None
        _schedule(sim, node, [(0.0, "a"), (100.0, "b")])
        sim.run()
        assert node.engine.label_rates()["a"] == 1.0


# The skew-reversal workload: phase 1 floods `a`, phase 2 floods `b`.
# Cumulatively `b` stays the rare label forever; decayed, `a` is.
def _reversal_stream():
    stream = []
    for i in range(100):
        stream.append((i * 0.05, "a"))          # 100 a in [0, 5)
    for i in range(5):
        stream.append((i * 1.0, "b"))           # 5 b in [0, 5)
    for i in range(2):
        stream.append((10.0 + i * 2.0, "a"))    # 2 a in [10, 14)
    for i in range(40):
        stream.append((10.0 + i * 0.1, "b"))    # 40 b in [10, 14)
    return sorted(stream)


def _plan_after_reversal(**config_kwargs):
    sim = Simulation(latency=0.0)
    node = _node(sim, evaluator="tree", **config_kwargs)
    _schedule(sim, node, _reversal_stream())
    sim.run()
    # A rule installed *now* is planned from the engine's current rates
    # (its leaves have observed nothing yet, so the rates decide).
    node.install(eca("ab", EWithin(ESeq(EAtom(q("a")), EAtom(q("b"))), 5.0),
                     PyAction(lambda n, b: None, "noop")))
    return node.engine._active["ab"][1].plan()


class TestSkewReversalRegression:
    def test_decayed_rates_reorder_the_plan(self):
        # Recent traffic is b-heavy, so a is now the rare label: join it
        # first.  This is the reorder the cumulative counter can't do.
        assert _plan_after_reversal(rate_halflife=2.0)["order"] == [0, 1]

    def test_cumulative_rates_keep_the_stale_order(self):
        # 102 a vs 45 b all-time: the dead phase-1 flood still outvotes
        # the live skew, so b stays "rare" and the plan stays stale.
        assert _plan_after_reversal()["order"] == [1, 0]

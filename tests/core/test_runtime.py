"""The threaded shard executor: worker pool, barrier, and clock affinity."""

import threading

import pytest

from repro import EngineConfig, Simulation
from repro.core import eca
from repro.core.actions import PyAction, UninstallRule
from repro.errors import RuleError, WebError
from repro.events import EAtom
from repro.runtime import ShardWorkerPool
from repro.terms import Var, d, q
from repro.web import Scheduler


class TestShardWorkerPool:
    def test_jobs_run_pinned_and_in_parallel_threads(self):
        pool = ShardWorkerPool(3, name="t")
        thread_ids = [None] * 3

        def job(i):
            def run():
                thread_ids[i] = threading.get_ident()
            return run

        pool.run_epoch([job(0), job(1), job(2)])
        pool.run_epoch([job(0), None, None])
        assert all(tid is not None for tid in thread_ids)
        assert len(set(thread_ids)) == 3            # one thread per shard
        assert thread_ids[0] != threading.get_ident()  # off the caller
        assert pool.epochs == 2
        assert pool.jobs_run == 4
        pool.shutdown()

    def test_pinning_is_stable_across_epochs(self):
        pool = ShardWorkerPool(2, name="t")
        seen = {0: set(), 1: set()}
        for _ in range(3):
            pool.run_epoch([
                lambda: seen[0].add(threading.get_ident()),
                lambda: seen[1].add(threading.get_ident()),
            ])
        assert len(seen[0]) == 1 and len(seen[1]) == 1
        assert seen[0] != seen[1]
        pool.shutdown()

    def test_barrier_joins_everyone_before_error_propagates(self):
        pool = ShardWorkerPool(3, name="t")
        finished = []

        def slow_ok():
            finished.append("ok")

        def boom():
            raise ValueError("shard 1 exploded")

        with pytest.raises(ValueError, match="shard 1 exploded"):
            pool.run_epoch([slow_ok, boom, slow_ok])
        # Both healthy jobs completed: the barrier held despite the error.
        assert finished == ["ok", "ok"]
        pool.shutdown()

    def test_lowest_shard_error_wins(self):
        pool = ShardWorkerPool(2, name="t")

        def fail(msg):
            def run():
                raise RuntimeError(msg)
            return run

        with pytest.raises(RuntimeError, match="zero"):
            pool.run_epoch([fail("zero"), fail("one")])
        pool.shutdown()

    def test_lazy_start_and_idempotent_shutdown(self):
        pool = ShardWorkerPool(2, name="t")
        assert not pool.started           # no threads until the first epoch
        pool.run_epoch([None, None])      # all-idle epoch: still no threads
        assert not pool.started
        pool.run_epoch([lambda: None, None])
        assert pool.started
        pool.shutdown()
        pool.shutdown()                   # idempotent
        with pytest.raises(WebError, match="shut down"):
            pool.run_epoch([lambda: None, None])

    def test_job_slot_count_must_match(self):
        pool = ShardWorkerPool(2, name="t")
        with pytest.raises(WebError, match="one job slot per worker"):
            pool.run_epoch([lambda: None])
        pool.shutdown()


class TestSchedulerThreadAffinity:
    def test_foreign_thread_schedule_is_rejected(self):
        scheduler = Scheduler()
        scheduler.at(1.0, lambda: None)  # binds ownership to this thread
        caught = []

        def schedule_from_worker():
            try:
                scheduler.at(2.0, lambda: None)
            except WebError as exc:
                caught.append(str(exc))

        thread = threading.Thread(target=schedule_from_worker)
        thread.start()
        thread.join()
        assert caught and "single-threaded" in caught[0]
        scheduler.at(3.0, lambda: None)  # the owner may, of course

    def test_worker_pool_jobs_cannot_touch_the_clock(self):
        scheduler = Scheduler()
        scheduler.at(1.0, lambda: None)  # bound to this thread
        pool = ShardWorkerPool(1, name="t")
        with pytest.raises(WebError, match="single-threaded"):
            pool.run_epoch([lambda: scheduler.at(2.0, lambda: None)])
        pool.shutdown()

    def test_serial_cross_thread_driving_stays_legal(self):
        """A simulation built on one thread and *driven* from another is
        still single-threaded use: run() re-binds clock ownership to the
        driving thread."""
        sim = Simulation(latency=0.05)
        a = sim.node("http://a.example")
        b = sim.node("http://b.example")
        failures = []

        def drive():
            try:
                a.raise_event("http://b.example", d("ping", 1))
                sim.run()
            except Exception as exc:  # noqa: BLE001 - reported to the test
                failures.append(exc)

        thread = threading.Thread(target=drive)
        thread.start()
        thread.join()
        assert failures == []
        assert b.events_received == 1


class TestExecutorConfig:
    def test_executor_validated_at_construction(self):
        with pytest.raises(RuleError, match="unknown executor"):
            EngineConfig(executor="fibers")

    def test_env_var_sets_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEFAULT_EXECUTOR", "threads")
        assert EngineConfig().executor == "threads"
        monkeypatch.delenv("REPRO_DEFAULT_EXECUTOR")
        assert EngineConfig().executor == "inline"

    def test_unsharded_node_is_always_inline(self):
        sim = Simulation(latency=0.0)
        node = sim.reactive_node("http://t.example",
                                 config=EngineConfig(executor="threads"))
        assert node.executor == "inline"
        assert node.stats["executor"] == "inline"

    def test_sync_delivery_falls_back_to_inline(self):
        sim = Simulation(latency=0.0)
        node = sim.reactive_node(
            "http://t.example",
            config=EngineConfig(shards=2, executor="threads",
                                sync_delivery=True))
        assert node.executor == "inline"
        assert node.router.pool is None

    def test_threaded_node_reports_and_counts_epochs(self):
        sim = Simulation(latency=0.0)
        node = sim.reactive_node(
            "http://t.example",
            config=EngineConfig(shards=2, executor="threads"))
        assert node.executor == "threads"
        fired = []
        node.install(
            eca("a", EAtom(q("a", Var("V"))),
                PyAction(lambda n, b: fired.append("a"), "rec")),
            eca("b", EAtom(q("b", Var("V"))),
                PyAction(lambda n, b: fired.append("b"), "rec")),
        )
        for i in range(3):
            node.raise_local(d("a", i))
            node.raise_local(d("b", i))
        sim.run()
        assert fired == ["a", "b"] * 3
        stats = node.stats
        assert stats["executor"] == "threads"
        assert stats.epochs > 0
        assert stats.barrier_wait_s >= 0.0
        assert stats.rule_firings == 6
        assert all(s.executor == "threads" for s in node.shard_stats)


class TestThreadedSemantics:
    def _run(self, **config_kwargs):
        sim = Simulation(latency=0.0)
        node = sim.reactive_node("http://t.example",
                                 config=EngineConfig(**config_kwargs))
        fired = []
        node.install(
            eca("killer", EAtom(q("kill", Var("V"))),
                UninstallRule("victim")),
            eca("victim", EAtom(q("x", Var("V"))),
                PyAction(lambda n, b: fired.append("victim"), "rec")),
            eca("bystander", EAtom(q("x", Var("V"))),
                PyAction(lambda n, b: fired.append("bystander"), "rec")),
        )
        # Same instant, one epoch: x, kill, x — the second x must not
        # reach the victim (the kill fired between them).
        sim.scheduler.at(1.0, lambda: node.raise_local(d("x", 1)))
        sim.scheduler.at(1.0, lambda: node.raise_local(d("kill", 0)))
        sim.scheduler.at(1.0, lambda: node.raise_local(d("x", 2)))
        sim.run()
        return fired

    def test_mid_epoch_uninstall_skips_later_collected_answers(self):
        inline = self._run(shards=3)
        threaded = self._run(shards=3, executor="threads")
        single = self._run()
        assert single == ["victim", "bystander", "bystander"]
        assert inline == single
        assert threaded == single

    def test_failing_shard_still_fires_the_pre_failure_prefix(self):
        """A matcher error on one shard mid-epoch must not swallow the
        firings of events that logically precede it — inline fires them
        before the error propagates, and so must the barrier."""
        from repro.errors import QueryError
        from repro.terms import Compare

        def run(**config_kwargs):
            sim = Simulation(latency=0.0)
            node = sim.reactive_node("http://t.example",
                                     config=EngineConfig(**config_kwargs))
            fired = []
            node.install(
                eca("ok", EAtom(q("a", Var("V"))),
                    PyAction(lambda n, b: fired.append("ok"), "rec")),
                # Matching this query raises QueryError (unbound rhs).
                eca("boom", EAtom(q("b", q("v", Compare(">", Var("U"))))),
                    PyAction(lambda n, b: fired.append("boom"), "rec")),
            )
            sim.scheduler.at(1.0, lambda: node.raise_local(d("a", 1)))
            sim.scheduler.at(1.0, lambda: node.raise_local(d("b", d("v", 5))))
            error = None
            try:
                sim.run()
            except QueryError as exc:
                error = exc
            return fired, error is not None

        single = run()
        assert single == (["ok"], True)
        assert run(shards=2) == single
        assert run(shards=2, executor="threads") == single

    def test_failing_event_own_earlier_answers_still_fire(self):
        """Within the failing event itself, answers collected before the
        raise are part of the inline prefix: inline fires each
        evaluator's answers as the dispatch loop reaches it, so a rule
        installed *before* the raising one has already fired."""
        from repro.errors import QueryError
        from repro.terms import Compare

        def run(**config_kwargs):
            sim = Simulation(latency=0.0)
            node = sim.reactive_node("http://t.example",
                                     config=EngineConfig(**config_kwargs))
            fired = []
            node.install(
                eca("ok", EAtom(q("b", Var("V"))),
                    PyAction(lambda n, b: fired.append("ok"), "rec")),
                # Same label, installed after "ok": matching raises.
                eca("boom", EAtom(q("b", q("v", Compare(">", Var("U"))))),
                    PyAction(lambda n, b: fired.append("boom"), "rec")),
            )
            sim.scheduler.at(1.0, lambda: node.raise_local(d("b", d("v", 5))))
            error = None
            try:
                sim.run()
            except QueryError as exc:
                error = exc
            return fired, error is not None

        single = run()
        assert single == (["ok"], True)
        assert run(shards=2) == single
        assert run(shards=2, executor="threads") == single

    def test_matcher_call_attribution_matches_inline(self):
        """The thread-local matcher counter must attribute per-shard
        matcher work exactly as the inline executor does."""
        def run(executor):
            sim = Simulation(latency=0.0)
            node = sim.reactive_node(
                "http://t.example",
                config=EngineConfig(shards=2, executor=executor))
            node.install(
                eca("a", EAtom(q("a", q("v", Var("V")))),
                    PyAction(lambda n, b: None, "noop")),
                eca("b", EAtom(q("b", q("v", Var("V")))),
                    PyAction(lambda n, b: None, "noop")),
            )
            for i in range(5):
                node.raise_local(d("a", d("v", i)))
                node.raise_local(d("b", d("v", i)))
            sim.run()
            return [s.matcher_calls for s in node.shard_stats]

        assert run("threads") == run("inline")

"""Tests for static rule-base analysis (Thesis 1's machine analysability)."""

from repro.core import PyAction, Raise, Sequence, eca
from repro.core.analysis import (
    analysis_report,
    consumed_labels,
    dead_rules,
    find_trigger_cycles,
    raised_labels,
    trigger_graph,
)
from repro.events.queries import EAnd, EAtom, ECount, ENot, EOr, ESeq, EWithin
from repro.terms import CTerm, Var, parse_construct, parse_query, q


def rule(name, on, *raises):
    action = Sequence(*(Raise("http://x.example", parse_construct(f"{label}{{}}"))
                        for label in raises)) if len(raises) != 1 else \
        Raise("http://x.example", parse_construct(f"{raises[0]}{{}}"))
    return eca(name, on, action)


class TestLabelInterfaces:
    def test_consumed_atom(self):
        r = rule("r", EAtom(q("order")), "x")
        assert consumed_labels(r) == {"order"}

    def test_consumed_composite(self):
        on = EWithin(ESeq(EAtom(q("a")), ENot(q("n")), EAtom(q("b"))), 5.0)
        r = rule("r", on, "x")
        assert consumed_labels(r) == {"a", "b"}  # negated labels not triggers

    def test_consumed_accumulation(self):
        r = rule("r", ECount(q("outage"), 3, 60.0), "x")
        assert consumed_labels(r) == {"outage"}

    def test_consumed_wildcard(self):
        r = rule("r", EAtom(q("*")), "x")
        assert consumed_labels(r) == {"*"}

    def test_raised_simple(self):
        r = rule("r", EAtom(q("a")), "ship", "bill")
        assert raised_labels(r) == {"ship", "bill"}

    def test_raised_through_branches_and_else(self):
        from repro.core import ecaa
        from repro.core.conditions import TrueCond

        r = ecaa("r", EAtom(q("a")), TrueCond(),
                 Raise("http://x.example", parse_construct("yes{}")),
                 Raise("http://x.example", parse_construct("no{}")))
        assert raised_labels(r) == {"yes", "no"}

    def test_dynamic_label_is_star(self):
        r = eca("r", EAtom(q("a")),
                Raise("http://x.example", CTerm(Var("L"), ())))
        assert raised_labels(r) == {"*"}

    def test_pyaction_is_opaque(self):
        r = eca("r", EAtom(q("a")), PyAction(lambda n, b: None))
        assert raised_labels(r) == {"*"}

    def test_non_raising_rule(self):
        from repro.core.actions import Persist

        r = eca("r", EAtom(q("a")),
                Persist("http://x.example/log", parse_construct("e{}")))
        assert raised_labels(r) == frozenset()


class TestTriggerGraph:
    def test_chain_detected(self):
        rules = [
            rule("first", EAtom(q("order")), "ship"),
            rule("second", EAtom(q("ship")), "notify"),
            rule("third", EAtom(q("notify")), "done"),
        ]
        graph = trigger_graph(rules)
        assert graph.has_edge("first", "second")
        assert graph.has_edge("second", "third")
        assert not graph.has_edge("third", "first")

    def test_cycle_detected(self):
        rules = [
            rule("ping", EAtom(q("pong-ev")), "ping-ev"),
            rule("pong", EAtom(q("ping-ev")), "pong-ev"),
        ]
        cycles = find_trigger_cycles(rules)
        assert cycles == [["ping", "pong"]]

    def test_self_loop_detected(self):
        looper = rule("echo", EAtom(q("echo-ev")), "echo-ev")
        assert find_trigger_cycles([looper]) == [["echo"]]

    def test_acyclic_base_reports_no_loops(self):
        rules = [
            rule("first", EAtom(q("order")), "ship"),
            rule("second", EAtom(q("ship")), "notify"),
        ]
        assert find_trigger_cycles(rules) == []

    def test_wildcard_consumer_triggered_by_all(self):
        rules = [
            rule("producer", EAtom(q("order")), "anything"),
            rule("logger", EAtom(q("*")), "log-entry"),
        ]
        graph = trigger_graph(rules)
        assert graph.has_edge("producer", "logger")


class TestDeadRules:
    def test_untriggerable_rule_found(self):
        rules = [
            rule("live", EAtom(q("order")), "ship"),
            rule("dead", EAtom(q("never-raised")), "x"),
        ]
        assert dead_rules(rules, external_labels=["order"]) == ["dead"]

    def test_external_labels_keep_rules_alive(self):
        rules = [rule("entry", EAtom(q("order")), "ship")]
        assert dead_rules(rules, external_labels=["order"]) == []
        assert dead_rules(rules) == ["entry"]

    def test_internally_triggered_not_dead(self):
        rules = [
            rule("first", EAtom(q("order")), "ship"),
            rule("second", EAtom(q("ship")), "notify"),
        ]
        assert "second" not in dead_rules(rules, external_labels=["order"])


class TestReport:
    def test_clean_report(self):
        rules = [
            rule("first", EAtom(q("order")), "ship"),
            rule("second", EAtom(q("ship")), "notify"),
        ]
        report = analysis_report(rules, external_labels=["order"])
        assert report["clean"] is True
        assert report["rules"] == 2

    def test_dirty_report(self):
        rules = [
            rule("echo", EAtom(q("echo-ev")), "echo-ev"),
            rule("dead", EAtom(q("nothing")), "x"),
        ]
        report = analysis_report(rules)
        assert report["clean"] is False
        assert ["echo"] in report["potential_loops"]
        assert "dead" in report["dead_rules"]

    def test_marketplace_example_is_loop_free(self):
        # The shop rules from the integration scenario: no event loops.
        from repro.lang import parse_program

        items = parse_program('''
            RULE a ON order{{ item[var I] }} DO RAISE TO "http://w.example" ship{ item[var I] }
            RULE b ON ship{{ item[var I] }} DO RAISE TO "http://s.example" shipped{ item[var I] }
        ''')
        assert find_trigger_cycles(items) == []

"""The unified public API: ReactiveNode facade and the fluent rule builder."""

import textwrap

import pytest

import repro
from repro import EngineConfig, ReactiveNode, Simulation, rule
from repro.core import ECARule, RuleSet, eca
from repro.core.actions import PyAction, Raise
from repro.core.conditions import AndCond, QueryCond, TrueCond
from repro.errors import RuleError
from repro.events.queries import EAtom
from repro.terms import parse_data, parse_query, q


def reactive_node(**kwargs):
    sim = Simulation(latency=0.0)
    return sim, sim.reactive_node("http://n.example", **kwargs)


class TestQuickstartDocstring:
    def test_package_quickstart_runs_verbatim(self):
        """The ``Quickstart::`` block in repro's docstring must execute."""
        block = repro.__doc__.split("Quickstart::", 1)[1]
        lines = []
        for line in block.splitlines()[1:]:
            if line.strip() == "" or line.startswith("    "):
                lines.append(line)
            else:
                break
        code = textwrap.dedent("\n".join(lines))
        assert "sim.reactive_node(" in code
        exec(compile(code, "<quickstart>", "exec"), {})  # noqa: S102


class TestReactiveNodeFacade:
    def test_reactive_node_bundles_node_and_engine(self):
        sim, node = reactive_node()
        assert isinstance(node, ReactiveNode)
        assert node.uri == "http://n.example"
        assert node.engine.node is node.node
        assert "rules=0" in repr(node)

    def test_install_surface_program_with_ruleset_and_procedure(self):
        sim, node = reactive_node()
        node.install('''
            PROCEDURE note(WHAT)
            PERSIST entry[var WHAT] INTO "http://n.example/log"

            RULE direct
            ON go{{ tag[var T] }}
            DO CALL note(WHAT = var T)

            RULESET grouped
              RULE also
              ON go{{ tag[var T] }}
              DO CALL note(WHAT = var T)
            END
        ''')
        assert sorted(node.rules()) == ["direct", "grouped/also"]
        node.raise_local('go{ tag["x"] }')
        sim.run()
        log = node.get("http://n.example/log")
        assert len(log.children) == 2

    def test_put_get_and_raise_accept_strings(self):
        sim, node = reactive_node()
        node.put("http://n.example/doc", 'doc{ v[1] }')
        assert node.get("http://n.example/doc").label == "doc"
        hits = []
        node.install(rule("r").on(EAtom(q("ping"))).do(
            PyAction(lambda n, b: hits.append(n.now))))
        node.raise_event("http://n.example", "ping{}")
        sim.run()
        assert hits and node.stats.rule_firings == 1

    def test_config_reaches_the_engine(self):
        sim, node = reactive_node(config=EngineConfig(
            consumption="chronicle", indexed_dispatch=False))
        assert node.engine.consumption == "chronicle"
        assert node.engine.config.indexed_dispatch is False

    def test_config_conflicts_with_legacy_kwargs(self):
        from repro.core import ReactiveEngine

        sim = Simulation(latency=0.0)
        with pytest.raises(RuleError):
            ReactiveEngine(sim.node("http://n.example"),
                           consumption="recent", config=EngineConfig())

    def test_bad_consumption_policy_rejected_eagerly(self):
        from repro.errors import EventQueryError

        with pytest.raises(EventQueryError):
            EngineConfig(consumption="sometimes")

    def test_install_rejects_non_rules(self):
        sim, node = reactive_node()
        with pytest.raises(RuleError):
            node.install(42)

    def test_failed_batch_install_leaves_engine_untouched(self):
        sim, node = reactive_node()
        keeper = eca("keeper", EAtom(q("a")), PyAction(lambda n, b: None))
        node.install(keeper)
        dup = eca("keeper", EAtom(q("b")), PyAction(lambda n, b: None))
        fresh = eca("fresh", EAtom(q("c")), PyAction(lambda n, b: None))
        with pytest.raises(RuleError):
            node.install(fresh, dup)
        # Atomic: neither the duplicate nor the valid rule was admitted,
        # and retrying the valid rule works.
        assert node.rules() == ["keeper"]
        node.install(fresh)
        assert sorted(node.rules()) == ["fresh", "keeper"]

    def test_parse_error_in_later_program_installs_nothing(self):
        from repro.errors import ParseError

        sim, node = reactive_node()
        good = '''
            PROCEDURE note(WHAT)
            PERSIST entry[var WHAT] INTO "http://n.example/log"

            RULE ok ON go{{}} DO CALL note(WHAT = 1)
        '''
        with pytest.raises(ParseError):
            node.install(good, "RULE broken ON go{{}} DO NONSENSE")
        assert node.rules() == []
        # Neither the rule nor the procedure from the good program stuck:
        node.install(good)
        assert node.rules() == ["ok"]

    def test_define_procedure_rejects_bare_string_params(self):
        sim, node = reactive_node()
        with pytest.raises(RuleError):
            node.define_procedure("p", "ITEM",
                                  'RAISE TO "http://n.example" x{}')


class TestRuleBuilder:
    def test_builder_lowers_to_ecarule(self):
        built = (rule("n")
                 .on('go{{ x[var X] }}')
                 .when('IN "http://n.example/doc" : doc{{ v[var X] }}')
                 .do('RAISE TO "http://n.example" hit{ x[var X] }')
                 .otherwise('RAISE TO "http://n.example" miss{}')
                 .firing("first")
                 .build())
        assert isinstance(built, ECARule)
        assert built.name == "n"
        assert built.firing == "first"
        assert len(built.branches) == 1
        assert isinstance(built.branches[0][0], QueryCond)
        assert isinstance(built.otherwise, Raise)

    def test_consecutive_whens_conjoin(self):
        built = (rule("n")
                 .on(EAtom(q("go")))
                 .when(QueryCond("http://n.example/a", parse_query("a")))
                 .when(QueryCond("http://n.example/b", parse_query("b")))
                 .do(Raise("http://n.example", parse_data("hit{}")))
                 .build())
        assert isinstance(built.branches[0][0], AndCond)

    def test_do_without_when_is_unconditional(self):
        built = rule("n").on(EAtom(q("go"))).do(
            Raise("http://n.example", parse_data("hit{}"))).build()
        assert isinstance(built.branches[0][0], TrueCond)

    def test_multiple_branches_make_ecna(self):
        built = (rule("n")
                 .on(EAtom(q("go")))
                 .when(QueryCond("http://n.example/a", parse_query("a")))
                 .do(Raise("http://n.example", parse_data("first{}")))
                 .do(Raise("http://n.example", parse_data("second{}")))
                 .build())
        assert len(built.branches) == 2

    def test_builder_validation_errors(self):
        with pytest.raises(RuleError):
            rule("n").do(Raise("http://n.example", parse_data("hit{}"))).build()
        with pytest.raises(RuleError):
            rule("n").on(EAtom(q("go"))).when(
                QueryCond("http://n.example/a", parse_query("a"))).build()
        with pytest.raises(RuleError):
            rule("n").on(EAtom(q("a"))).on(EAtom(q("b")))

    def test_install_builds_implicitly(self):
        sim, node = reactive_node()
        node.install(rule("implicit").on(EAtom(q("go"))).do(
            PyAction(lambda n, b: None)))
        assert node.rules() == ["implicit"]


class TestUninstall:
    def test_uninstall_ruleset_by_reference_and_name(self):
        sim, node = reactive_node()
        noop = PyAction(lambda n, b: None)
        by_ref = RuleSet("byref")
        by_ref.add(eca("r1", EAtom(q("a")), noop))
        by_name = RuleSet("byname")
        by_name.add(eca("r2", EAtom(q("b")), noop))
        node.install(by_ref, by_name)
        assert sorted(node.rules()) == ["byname/r2", "byref/r1"]
        node.uninstall(by_ref)
        assert node.rules() == ["byname/r2"]
        node.uninstall("byname")
        assert node.rules() == []

    def test_uninstall_rule_object(self):
        sim, node = reactive_node()
        installed = eca("r", EAtom(q("a")), PyAction(lambda n, b: None))
        node.install(installed)
        node.uninstall(installed)
        assert node.rules() == []

    def test_uninstall_structurally_equal_rule(self):
        from repro.lang import parse_rule

        sim, node = reactive_node()
        src = 'RULE r ON go{{}} DO RAISE TO "http://n.example" pong{}'
        node.install(parse_rule(src))
        node.uninstall(parse_rule(src))  # re-parsed: equal, not identical
        assert node.rules() == []

    def test_uninstall_miss_lists_installed_names(self):
        sim, node = reactive_node()
        node.install(eca("present", EAtom(q("a")), PyAction(lambda n, b: None)))
        ruleset = RuleSet("grouped")
        ruleset.add(eca("r", EAtom(q("b")), PyAction(lambda n, b: None)))
        node.install(ruleset)
        with pytest.raises(RuleError) as info:
            node.uninstall("ghost")
        message = str(info.value)
        assert "ghost" in message
        assert "present" in message
        assert "grouped" in message

    def test_uninstall_foreign_ruleset_rejected(self):
        sim, node = reactive_node()
        with pytest.raises(RuleError):
            node.uninstall(RuleSet("never-installed"))

    def test_uninstall_wrong_type_rejected(self):
        sim, node = reactive_node()
        with pytest.raises(RuleError):
            node.engine.uninstall(3.14)


class TestWithinSugar:
    def test_within_wraps_the_event_query(self):
        from repro.events.queries import ENot, ESeq, EWithin

        built = (rule("absent")
                 .on(ESeq(EAtom(q("a")), ENot(q("n"))))
                 .within(4.0)
                 .do(PyAction(lambda n, b: None))
                 .build())
        assert isinstance(built.event, EWithin)
        assert built.event.window == 4.0

    def test_within_enables_absence_rules_end_to_end(self):
        from repro.events.queries import ENot, ESeq

        sim, node = reactive_node()
        fired = []
        node.install(rule("absent")
                     .on(ESeq(EAtom(q("a")), ENot(q("n"))))
                     .within(4.0)
                     .do(PyAction(lambda n, b: fired.append(n.now))))
        node.raise_local("a{}")
        sim.run()
        assert fired == [4.0]

    def test_repeated_within_nests(self):
        from repro.events.queries import EWithin

        built = (rule("r").on(EAtom(q("a"))).within(4.0).within(2.0)
                 .do(PyAction(lambda n, b: None)).build())
        assert isinstance(built.event, EWithin)
        assert isinstance(built.event.query, EWithin)
        assert (built.event.window, built.event.query.window) == (2.0, 4.0)

    def test_within_before_on_is_a_clear_error(self):
        with pytest.raises(RuleError, match=r"call \.on\(\.\.\.\) first"):
            rule("r").within(4.0)

    def test_builder_errors_are_catchable_as_reproerror(self):
        with pytest.raises(repro.ReproError):
            rule("r").within(4.0)
        with pytest.raises(repro.ReproError):
            rule("r").build()


class TestNodeStatsNamespace:
    def _fired_node(self, **kwargs):
        sim, node = reactive_node(**kwargs)
        node.install(rule("r").on(EAtom(q("ping"))).do(
            PyAction(lambda n, b: None)))
        node.raise_local("ping{}")
        sim.run()
        return node

    def test_sub_views_and_delegation(self):
        from repro import NodeStats
        from repro.core.engine import EngineStats

        node = self._fired_node()
        stats = node.stats
        assert isinstance(stats, NodeStats)
        assert isinstance(stats.engine, EngineStats)
        # Attribute and ["key"] access keep delegating to the engine view.
        assert stats.rule_firings == stats.engine.rule_firings == 1
        assert stats["rule_firings"] == 1
        assert "rule_firings=1" in repr(stats)

    def test_unsharded_shards_view_mirrors_node_inbox(self):
        node = self._fired_node()
        stats = node.stats
        assert len(stats.shards) == 1
        assert stats.shards[0].rule_firings == 1
        assert stats.ingest is None

    def test_sharded_shards_view_has_one_entry_per_shard(self):
        node = self._fired_node(config=EngineConfig(shards=3))
        stats = node.stats
        assert len(stats.shards) == 3
        assert sum(s.rule_firings for s in stats.shards) == 1

    def test_deprecated_aliases_match_the_sub_views(self):
        node = self._fired_node(config=EngineConfig(shards=2))
        stats = node.stats
        assert node.shard_stats == stats.shards
        assert node.ingest_stats is stats.ingest is None

    def test_evaluator_knob_reaches_the_facade(self):
        from repro.events import TreeEvaluator

        sim, node = reactive_node(config=EngineConfig(evaluator="tree"))
        node.install(rule("r").on(EAtom(q("ping"))).do(
            PyAction(lambda n, b: None)))
        node.raise_local("ping{}")
        sim.run()
        assert node.stats.rule_firings == 1
        evaluators = [ev for _rule, ev in node.engine._active.values()]
        assert evaluators and all(
            isinstance(ev, TreeEvaluator) for ev in evaluators)

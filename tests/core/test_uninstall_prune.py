"""Uninstall prunes the dispatch structure eagerly, not at the next refresh.

Regression tests for the stale-interest bug: an uninstalled rule used to
keep its trie rows and absence deadlines registered until the next full
``refresh()``, so its label kept attracting deliveries and its expired
deadlines kept waking the engine for nothing.
"""

from repro import EngineConfig, Simulation
from repro.core import eca
from repro.core.actions import PyAction
from repro.events import EAtom, ENot, ESeq, EWithin
from repro.terms import Var, d, q


def single_node():
    sim = Simulation(latency=0.0)
    return sim, sim.reactive_node("http://p.example")


def recorder(fired, tag):
    return PyAction(lambda n, b, t=tag: fired.append(t), "record")


class TestEngineEagerPrune:
    def test_uninstall_before_deadline_cancels_the_wakeup(self):
        """The failing-before case: uninstalling an absence rule whose
        deadline is already registered must not wake the engine when the
        instant arrives (no owners are left to advance)."""
        sim, node = single_node()
        fired = []
        node.install(eca(
            "escalate",
            EWithin(ESeq(EAtom(q("ticket", Var("T"))),
                         ENot(q("reply", Var("T")))), 5.0),
            recorder(fired, "late"),
        ))
        node.raise_local(d("ticket", 1))
        sim.scheduler.at(1.0, lambda: node.uninstall("escalate"))
        sim.run()
        assert sim.scheduler.now >= 5.0  # the clock entry itself still ran
        assert fired == []
        assert node.engine.stats.wakeups == 0

    def test_uninstall_prunes_label_interest_immediately(self):
        sim, node = single_node()
        fired = []
        node.install(
            eca("a-rule", EAtom(q("a", Var("X"))), recorder(fired, "a")),
            eca("b-rule", EAtom(q("b", Var("X"))), recorder(fired, "b")),
        )
        node.uninstall("a-rule")
        # The trie root for "a" is gone the moment uninstall returns — no
        # refresh() in between — while "b" is untouched.
        assert "a" not in node.engine._index
        assert "b" in node.engine._index
        sim.scheduler.at(0.0, lambda: node.raise_local(d("a", 1)))
        sim.scheduler.at(1.0, lambda: node.raise_local(d("b", 2)))
        sim.run()
        assert fired == ["b"]
        # The "a" event found no trie root: dropped before any evaluator
        # was considered, not filtered candidate-by-candidate.
        assert node.engine.stats.candidates_considered == 1

    def test_surviving_deadline_at_the_same_instant_still_fires(self):
        """Pruning one owner must not take down a shared deadline: another
        rule expiring at the same instant still wakes up and fires."""
        sim, node = single_node()
        fired = []
        absence = EWithin(ESeq(EAtom(q("ticket", Var("T"))),
                               ENot(q("reply", Var("T")))), 5.0)
        node.install(
            eca("escalate", absence, recorder(fired, "escalate")),
            eca("second", absence, recorder(fired, "second")),
        )
        node.raise_local(d("ticket", 1))
        sim.scheduler.at(1.0, lambda: node.uninstall("escalate"))
        sim.run()
        assert fired == ["second"]
        assert node.engine.stats.wakeups == 1


class TestRouterEagerPrune:
    def test_uninstall_shrinks_delivery_to_interested_shards(self):
        """A replicated residual rule's shards stop receiving the label's
        events as soon as the rule is uninstalled."""
        sim = Simulation(latency=0.0)
        node = sim.reactive_node("http://p.example",
                                 config=EngineConfig(shards=4))
        fired = []
        node.install(*(
            eca(f"r{i}", EAtom(q("stock", sym=f"S{i}")), recorder(fired, i))
            for i in range(8)
        ))
        # The residual rule replicates everywhere: every shard now needs
        # every "stock" event.
        node.install(eca("audit", EAtom(q("stock", Var("X"))),
                         recorder(fired, "audit")))
        assert node.router.placement()["audit"] == (0, 1, 2, 3)

        def processed():
            return sum(stats.events_processed for stats in node.shard_stats)

        sim.scheduler.at(0.0, lambda: node.raise_local(d("stock", 1, sym="S0")))
        sim.run()
        with_residual = processed()
        assert with_residual == 4  # all four shards saw the event
        assert fired == [0, "audit"]
        node.uninstall("audit")
        sim.scheduler.at(sim.scheduler.now + 1.0,
                         lambda: node.raise_local(d("stock", 2, sym="S0")))
        sim.run()
        assert processed() == with_residual + 1  # only S0's value shard
        assert fired == [0, "audit", 0]

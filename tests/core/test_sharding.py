"""Shard routing: placement, replication dedup, uninstall, migration."""

import pytest

from repro import EngineConfig, ReactiveNode, Simulation
from repro.core import ReactiveEngine, RuleSet, eca
from repro.core.actions import PyAction
from repro.errors import RuleError
from repro.events import EAtom, ENot, ESeq, EWithin
from repro.sharding import ShardRouter, shard_of
from repro.terms import LabelVar, Var, d, q


def sharded_node(n=4, **config_kwargs):
    sim = Simulation(latency=0.0)
    return sim, sim.reactive_node("http://s.example",
                                  config=EngineConfig(shards=n, **config_kwargs))


def recorder(fired, tag):
    return PyAction(lambda n, b, t=tag: fired.append(t), "record")


class TestConfigSurface:
    def test_shards_must_be_positive(self):
        with pytest.raises(RuleError, match="shards"):
            EngineConfig(shards=0)

    def test_bare_engine_rejects_sharded_config(self):
        sim = Simulation(latency=0.0)
        with pytest.raises(RuleError, match="facade"):
            ReactiveEngine(sim.node("http://s.example"),
                           config=EngineConfig(shards=2))

    def test_router_requires_at_least_two_shards(self):
        sim = Simulation(latency=0.0)
        with pytest.raises(RuleError, match="shards >= 2"):
            ShardRouter(sim.node("http://s.example"), EngineConfig(shards=1))

    def test_shards_one_is_the_plain_single_engine_path(self):
        sim = Simulation(latency=0.0)
        node = sim.reactive_node("http://s.example", config=EngineConfig(shards=1))
        assert node.router is None
        assert isinstance(node.engine, ReactiveEngine)
        assert node.shards == (node.engine,)
        assert len(node.shard_stats) == 1

    def test_sharded_facade_exposes_fleet(self):
        sim, node = sharded_node(3)
        assert node.engine is None
        assert len(node.shards) == 3
        assert len(node.shard_stats) == 3
        assert "shards=3" in repr(node)

    def test_shard_of_is_stable(self):
        assert shard_of("stock", 4) == shard_of("stock", 4)
        assert 0 <= shard_of("anything", 3) < 3


class TestPlacement:
    def test_disjoint_labels_spread_over_shards(self):
        sim, node = sharded_node(4)
        node.install(*(
            eca(f"r{i}", EAtom(q(f"evt-{i}", Var("X"))), recorder([], i))
            for i in range(8)
        ))
        per_shard = [len(engine.rules()) for engine in node.shards]
        assert sum(per_shard) == 8
        assert max(per_shard) == 2  # greedy balance: two labels each

    def test_hot_label_splits_on_the_attribute_axis(self):
        sim, node = sharded_node(4)
        node.install(*(
            eca(f"r{i}", EAtom(q("stock", q("p", Var("P")), sym=f"S{i}")),
                recorder([], i))
            for i in range(8)
        ))
        axis, value_shard = node.router._plan.splits["stock"]
        assert axis == ("attr", "sym")
        assert len({shard for shard in value_shard.values()}) == 4
        assert all(len(engine.rules()) == 2 for engine in node.shards)

    def test_wildcard_rules_are_replicated_everywhere(self):
        sim, node = sharded_node(4)
        node.install(eca("wild", EAtom(q(LabelVar("L"))), recorder([], "w")))
        assert all(engine.rules() == ["wild"] for engine in node.shards)
        assert node.router.placement()["wild"] == (0, 1, 2, 3)

    def test_hot_label_splits_on_a_child_axis(self):
        sim, node = sharded_node(4)
        node.install(*(
            eca(f"r{i}", EAtom(q("order", q("venue", f"V{i}"))), recorder([], i))
            for i in range(8)
        ))
        axis, value_shard = node.router._plan.splits["order"]
        assert axis == ("child", "venue")
        assert len({shard for shard in value_shard.values()}) == 4
        assert all(len(engine.rules()) == 2 for engine in node.shards)

    def test_two_hot_labels_split_independently(self):
        sim, node = sharded_node(4)
        node.install(*(
            eca(f"s{i}", EAtom(q("stock", sym=f"S{i}")), recorder([], i))
            for i in range(5)
        ), *(
            eca(f"o{i}", EAtom(q("order", q("venue", f"V{i}"))), recorder([], i))
            for i in range(5)
        ))
        splits = node.router._plan.splits
        assert splits["stock"][0] == ("attr", "sym")
        assert splits["order"][0] == ("child", "venue")


class TestAmbiguousRouting:
    def test_ambiguous_event_fires_each_rule_exactly_once(self):
        """An event with several `venue` children can match rules on any
        value shard of the split label: every shard gets a copy, each
        rule fires once, in installation order."""
        sim, node = sharded_node(4)
        fired = []
        node.install(*(
            eca(f"r{i}", EAtom(q("order", q("venue", f"V{i % 4}"), q("x", Var("X")))),
                recorder(fired, i))
            for i in range(8)
        ))
        assert node.router._plan.splits["order"][0] == ("child", "venue")
        # venue V0 and V1 live on different shards; this event shows both.
        term = d("order", d("venue", "V0"), d("venue", "V1"), d("x", 9))
        node.raise_local(term)
        sim.run()
        assert fired == [0, 1, 4, 5]  # every V0/V1 rule once, install order
        assert node.stats.rule_firings == 4
        # The copies on the other shards advanced replicas without firing.
        assert sum(s.events_processed for s in node.shard_stats) == 4

    def test_ambiguous_event_under_threads_matches_inline(self):
        def run(executor):
            sim = Simulation(latency=0.0)
            node = sim.reactive_node(
                "http://s.example",
                config=EngineConfig(shards=4, executor=executor))
            fired = []
            node.install(*(
                eca(f"r{i}",
                    EAtom(q("order", q("venue", f"V{i % 4}"), q("x", Var("X")))),
                    recorder(fired, i))
                for i in range(8)
            ))
            term = d("order", d("venue", "V1"), d("venue", "V3"), d("x", 1))
            sim.scheduler.at(0.0, lambda: node.raise_local(term))
            sim.scheduler.at(1.0, lambda: node.raise_local(d(
                "order", d("venue", "V2"), d("x", 2))))
            sim.run()
            return fired, node.stats.rule_firings

        assert run("threads") == run("inline")
        assert run("inline")[0] == [1, 3, 5, 7, 2, 6]


class TestExactlyOnceFiring:
    def test_wildcard_replicas_fire_exactly_once_per_event(self):
        sim, node = sharded_node(4)
        fired = []
        node.install(eca("wild", EAtom(q(LabelVar("L"))), recorder(fired, "w")))
        for i in range(6):
            node.raise_local(d(f"evt-{i}", i))
        sim.run()
        assert fired == ["w"] * 6
        stats = node.stats
        assert stats.rule_firings == 6
        # The other three replicas produced (and suppressed) the same answers.
        assert stats.firings_deduped == 18

    def test_spanning_rule_fires_once_from_either_label(self):
        sim, node = sharded_node(2)
        fired = []
        node.install(
            eca("a-only", EAtom(q("a", Var("V"))), recorder(fired, "a")),
            eca("b-only", EAtom(q("b", Var("V"))), recorder(fired, "b")),
            eca("span", EWithin(ESeq(EAtom(q("a")), EAtom(q("b"))), 10.0),
                recorder(fired, "span")),
        )
        homes = node.router._plan.home
        assert homes["a"] != homes["b"]  # the rule really spans shards
        assert node.router.placement()["span"] == (0, 1)
        sim.scheduler.at(0.0, lambda: node.raise_local(d("a", 1)))
        sim.scheduler.at(1.0, lambda: node.raise_local(d("b", 2)))
        sim.run()
        assert fired == ["a", "b", "span"]

    def test_absence_answer_fires_once_across_replicas(self):
        sim, node = sharded_node(4)
        fired = []
        node.install(
            eca("quiet",
                EWithin(ESeq(EAtom(q("start", q("x", Var("X")))), ENot(q("stop"))),
                        2.0),
                recorder(fired, "quiet")),
            # A second label forces `start`/`stop` and `other` onto
            # different shards, and the wildcard replicates everywhere.
            eca("other", EAtom(q("other", Var("V"))), recorder(fired, "other")),
            eca("wild", EAtom(q(LabelVar("L"))), recorder(fired, "wild")),
        )
        sim.scheduler.at(0.0, lambda: node.raise_local(d("start", d("x", 1))))
        sim.scheduler.at(1.0, lambda: node.raise_local(d("other", 5)))
        sim.run()
        assert fired == ["wild", "other", "wild", "quiet"]
        assert node.stats.rule_firings == 4


class TestUninstall:
    def test_uninstall_removes_rule_from_every_shard(self):
        sim, node = sharded_node(4)
        node.install(eca("wild", EAtom(q(LabelVar("L"))), recorder([], "w")),
                     eca("a", EAtom(q("a", Var("V"))), recorder([], "a")))
        assert all("wild" in engine.rules() for engine in node.shards)
        node.uninstall("wild")
        assert all("wild" not in engine.rules() for engine in node.shards)
        assert node.rules() == ["a"]
        node.uninstall("a")
        assert all(engine.rules() == [] for engine in node.shards)

    def test_uninstall_split_value_rule_leaves_the_rest(self):
        sim, node = sharded_node(4)
        rules = [eca(f"r{i}", EAtom(q("stock", q("p", Var("P")), sym=f"S{i}")),
                     recorder([], i)) for i in range(8)]
        node.install(*rules)
        node.uninstall(rules[3])
        assert node.rules() == [f"r{i}" for i in range(8) if i != 3]
        assert sum(len(engine.rules()) for engine in node.shards) == 7

    def test_uninstall_ruleset_by_name(self):
        sim, node = sharded_node(2)
        ruleset = RuleSet("pack")
        ruleset.add(eca("one", EAtom(q("a", Var("V"))), recorder([], 1)))
        ruleset.add(eca("two", EAtom(q("b", Var("V"))), recorder([], 2)))
        node.install(ruleset)
        assert node.rules() == ["pack/one", "pack/two"]
        node.uninstall("pack")
        assert node.rules() == []

    def test_uninstall_missing_is_informative(self):
        sim, node = sharded_node(2)
        node.install(eca("a", EAtom(q("a", Var("V"))), recorder([], 1)))
        with pytest.raises(RuleError, match="installed rules: a"):
            node.uninstall("nope")

    def test_duplicate_install_rolls_back_atomically(self):
        sim, node = sharded_node(2)
        node.install(eca("a", EAtom(q("a", Var("V"))), recorder([], 1)))
        with pytest.raises(RuleError, match="duplicate|already"):
            node.install(
                eca("b", EAtom(q("b", Var("V"))), recorder([], 2)),
                eca("a", EAtom(q("a", Var("V"))), recorder([], 3)),
            )
        assert node.rules() == ["a"]
        assert sum(len(engine.rules()) for engine in node.shards) == 1


class TestStateMigration:
    def test_partial_match_state_survives_repartitioning(self):
        """Installing new rules may move a half-matched rule to another
        shard; its evaluator state must move with it."""
        sim, node = sharded_node(2)
        fired = []
        node.install(eca("seq", EWithin(ESeq(EAtom(q("a")), EAtom(q("b"))), 100.0),
                         recorder(fired, "seq")))
        sim.scheduler.at(0.0, lambda: node.raise_local(d("a", 1)))
        sim.run_until(1.0)  # half-matched: waiting for b
        before = node.router.placement()["seq"]
        node.install(*(
            eca(f"r{i}", EAtom(q(f"evt-{i}", Var("X"))), recorder(fired, i))
            for i in range(6)
        ))
        sim.scheduler.at(2.0, lambda: node.raise_local(d("b", 2)))
        sim.run()
        assert "seq" in fired, f"state lost (placement was {before})"

    def test_pending_absence_deadline_survives_repartitioning(self):
        sim, node = sharded_node(2)
        fired = []
        node.install(eca("quiet",
                         EWithin(ESeq(EAtom(q("start")), ENot(q("stop"))), 2.0),
                         recorder(fired, "quiet")))
        sim.scheduler.at(0.0, lambda: node.raise_local(d("start", 1)))
        sim.run_until(0.5)
        node.install(*(
            eca(f"r{i}", EAtom(q(f"evt-{i}", Var("X"))), recorder(fired, i))
            for i in range(6)
        ))
        sim.run()
        assert fired == ["quiet"]


class TestInFlightRepartition:
    def test_install_during_replicated_event_does_not_fork_state(self):
        """Regression: a rule firing an INSTALL while the triggering event's
        replica copies are still queued must not re-balance existing rules —
        moving a replica that has not yet consumed the in-flight event would
        fork its state and silently drop a later firing."""
        from repro.core.actions import InstallRule
        from repro.core.meta import rule_to_term
        from repro.lang.parser import parse_action

        def run(shards):
            sim = Simulation(latency=0.0)
            config = EngineConfig(**({"shards": shards} if shards > 1 else {}))
            node = sim.reactive_node("http://s.example", config=config)
            fired = []
            # Spans home(a) and home(c): replicated, so the `a` event has a
            # suppressed copy in flight on the other shard when `inst` fires.
            node.install(
                eca("span", EWithin(ESeq(EAtom(q("a")), EAtom(q("c"))), 100.0),
                    recorder(fired, "span")),
                eca("inst", EAtom(q("a")),
                    InstallRule(rule_to_term(
                        eca("late", EAtom(q("b", Var("V"))),
                            parse_action(
                                'PERSIST seen[var V] INTO '
                                '"http://s.example/log"'))))),
                eca("c-only", EAtom(q("c", Var("V"))), recorder(fired, "c")),
            )
            sim.scheduler.at(0.0, lambda: node.raise_local(d("a", 1)))
            sim.scheduler.at(1.0, lambda: node.raise_local(d("b", 2)))
            sim.scheduler.at(2.0, lambda: node.raise_local(d("c", 3)))
            sim.run()
            return fired, str(node.get("http://s.example/log"))

        assert run(3) == run(1)

    def test_install_mid_dispatch_with_drained_inboxes_does_not_rebalance(self):
        """Regression: the event's *last* queued copy may already be popped
        while its dispatch snapshot is still running; an install fired from
        that snapshot must still freeze placements — a rebalance would
        deep-copy an evaluator later in the snapshot before it consumed the
        in-flight event, forking replica state."""

        def run(shards):
            sim = Simulation(latency=0.0)
            config = EngineConfig(**({"shards": shards} if shards > 1 else {}))
            node = sim.reactive_node("http://s.example", config=config)
            fired = []
            extras = [eca(f"aa{i}", EAtom(q(f"aa-{i}", Var("V"))),
                          recorder(fired, f"aa{i}")) for i in range(3)]
            node.install(
                *(eca(f"m{i}", EAtom(q("m", q("k", Var("V")), tag=f"T{i}")),
                      recorder(fired, f"m{i}")) for i in range(3)),
                # Fires while the `l` event's only copy is already popped
                # and `span` (later in the snapshot) has not yet seen it.
                eca("inst", EAtom(q("l")),
                    PyAction(lambda n, b: node.install(*extras), "install")),
                eca("span", EWithin(ESeq(EAtom(q("l")), EAtom(q("k"))), 100.0),
                    recorder(fired, "span")),
            )
            sim.scheduler.at(0.0, lambda: node.raise_local(d("l", 1)))
            sim.scheduler.at(1.0, lambda: node.raise_local(d("k", 2)))
            sim.run()
            return fired, node.stats.rule_firings

        assert run(2) == run(1)

    def test_absence_deadline_planted_mid_flight_survives(self):
        """The absence deadline of a replicated rule planted while an
        in-flight re-partition runs must still wake up and fire."""
        from repro.core.actions import InstallRule
        from repro.core.meta import rule_to_term
        from repro.lang.parser import parse_action

        def run(shards):
            sim = Simulation(latency=0.0)
            config = EngineConfig(**({"shards": shards} if shards > 1 else {}))
            node = sim.reactive_node("http://s.example", config=config)
            fired = []
            node.install(
                eca("quiet",
                    EWithin(ESeq(EAtom(q("a")), ENot(q("stop"))), 2.0),
                    recorder(fired, "quiet")),
                eca("wild", EAtom(q(LabelVar("L"))), recorder(fired, "wild")),
                eca("inst", EAtom(q("a")),
                    InstallRule(rule_to_term(
                        eca("late", EAtom(q("b", Var("V"))),
                            parse_action(
                                'PERSIST seen[var V] INTO '
                                '"http://s.example/log"'))))),
            )
            sim.scheduler.at(0.0, lambda: node.raise_local(d("a", 1)))
            sim.run()
            return fired

        assert run(4) == run(1)


class TestThesis11MetaActions:
    def test_install_action_routes_through_the_router(self):
        """A rule installed by a fired INSTALL action (Thesis 11) must be
        partitioned by the router, not trapped inside one shard."""
        from repro.core.actions import InstallRule, Raise
        from repro.core.meta import rule_to_term

        sim, node = sharded_node(4)
        greet = eca("greet", EAtom(q("ping", q("sender", Var("F")))),
                    Raise(Var("F"), d("pong")))
        node.install(eca("deploy", EAtom(q("deploy-request")),
                         InstallRule(rule_to_term(greet))))
        other = sim.node("http://other.example")
        node.raise_local(d("deploy-request"))
        sim.run()
        assert "greet" in node.rules()
        assert "greet" in node.router.placement()
        other.raise_event("http://s.example", d("ping", d("sender", other.uri)))
        sim.run()
        assert other.events_received == 1  # the pong came back

    def test_uninstall_action_routes_through_the_router(self):
        from repro.core.actions import UninstallRule

        sim, node = sharded_node(4)
        fired = []
        node.install(eca("wild", EAtom(q(LabelVar("L"))), recorder(fired, "w")),
                     eca("cleanup", EAtom(q("cleanup")), UninstallRule("wild")))
        node.raise_local(d("cleanup"))
        sim.run()
        assert "wild" not in node.rules()
        assert all("wild" not in engine.rules() for engine in node.shards)


class TestOrderEquivalenceCorners:
    def test_interleaved_ruleset_and_single_rule_order_matches_engine(self):
        """Regression: the engine activates single rules before rule-set
        rules regardless of install interleaving; the router's global
        order (firing order and rules()) must match that, not the raw
        interleaving."""

        def run(shards):
            sim = Simulation(latency=0.0)
            config = EngineConfig(**({"shards": shards} if shards > 1 else {}))
            node = sim.reactive_node("http://s.example", config=config)
            fired = []
            ruleset = RuleSet("S")
            ruleset.add(eca("a", EAtom(q("x", Var("V"))), recorder(fired, "S/a")))
            node.install(ruleset, eca("b", EAtom(q("x", Var("V"))),
                                      recorder(fired, "b")))
            node.raise_local(d("x", 1))
            sim.run()
            return node.rules(), fired

        assert run(2) == run(1)

    def test_sync_delivery_nested_raise_matches_single_engine(self):
        """Regression: with sync_delivery a locally raised event is
        dispatched nested inside the raising action; the router must drain
        inline, not defer to the scheduler."""
        from repro.core.actions import Raise

        def run(shards):
            sim = Simulation(latency=0.0)
            config = EngineConfig(sync_delivery=True,
                                  **({"shards": shards} if shards > 1 else {}))
            node = sim.reactive_node("http://s.example", config=config)
            fired = []
            node.install(
                eca("A", EAtom(q("x", Var("V"))),
                    PyAction(lambda n, b: (fired.append("A"),
                                           n.raise_local(d("y", 1))), "raise")),
                eca("B", EAtom(q("x", Var("V"))), recorder(fired, "B")),
                eca("C", EAtom(q("y", Var("V"))), recorder(fired, "C")),
            )
            node.raise_local(d("x", 0))
            sim.run()
            return fired

        assert run(1) == ["A", "C", "B"]  # nested dispatch, mid-event
        assert run(2) == run(1)
        assert run(4) == run(1)

    def test_sync_nested_raise_with_replicated_rule_fires_once(self):
        """Regression: with sync_delivery, a cross-shard conjunction whose
        second event is raised mid-action must fire exactly once — a
        nested drain must not hand the replicas the in-flight and the
        raised event in opposite orders (each completing on its own
        firing copy)."""
        from repro.core.actions import Raise
        from repro.events import EAnd

        def run(shards):
            sim = Simulation(latency=0.0)
            config = EngineConfig(sync_delivery=True,
                                  **({"shards": shards} if shards > 1 else {}))
            node = sim.reactive_node("http://s.example", config=config)
            fired = []
            node.install(
                eca("r1", EAtom(q("stock", q("p", Var("P")))),
                    PyAction(lambda n, b: (fired.append("r1"),
                                           n.raise_local(d("foo", 1))),
                             "raise")),
                # Spans home(stock) and home(foo): replicated, so a copy of
                # the stock event is still queued when r1 sync-raises foo.
                eca("r2", EWithin(EAnd(EAtom(q("stock")), EAtom(q("foo"))),
                                  10.0),
                    recorder(fired, "r2")),
            )
            node.raise_local(d("stock", d("p", 1.0)))
            sim.run()
            return fired, node.stats.rule_firings

        single = run(1)
        assert single == (["r1", "r2"], 2)
        for shards in (2, 4):
            assert run(shards) == single


class TestFairnessKnob:
    def test_inbox_batch_bounds_per_shard_drain_work(self):
        sim, node = sharded_node(2, inbox_batch=1)
        fired = []
        node.install(eca("a", EAtom(q("a", Var("V"))), recorder(fired, "a")),
                     eca("b", EAtom(q("b", Var("V"))), recorder(fired, "b")))
        for i in range(4):
            node.raise_local(d("a", i))
            node.raise_local(d("b", i))
        sim.run()
        assert fired == ["a", "b"] * 4  # arrival order, despite batching
        assert node.router.inbox_drains >= 4  # re-yields between batches


class TestProceduresAndStats:
    def test_procedures_are_defined_on_every_shard(self):
        sim, node = sharded_node(3)
        node.install('''
            PROCEDURE note(WHAT)
            PERSIST entry[var WHAT] INTO "http://s.example/log"

            RULE a ON a{{ tag[var T] }} DO CALL note(WHAT = var T)
            RULE b ON b{{ tag[var T] }} DO CALL note(WHAT = var T)
        ''')
        node.raise_local('a{ tag["x"] }')
        node.raise_local('b{ tag["y"] }')
        sim.run()
        log = node.get("http://s.example/log")
        assert len(log.children) == 2

    def test_aggregate_stats_sum_the_fleet(self):
        sim, node = sharded_node(2)
        node.install(eca("a", EAtom(q("a", Var("V"))), recorder([], "a")),
                     eca("b", EAtom(q("b", Var("V"))), recorder([], "b")))
        for i in range(3):
            node.raise_local(d("a", i))
        node.raise_local(d("b", 0))
        sim.run()
        assert node.stats.rule_firings == 4
        per_shard = node.shard_stats
        assert sum(s.rule_firings for s in per_shard) == 4
        assert sum(s.events_processed for s in per_shard) == \
            node.stats.events_processed
        # Per-shard inbox peaks reflect each shard's own queue.
        assert all(s.inbox_peak >= 1 for s in per_shard)

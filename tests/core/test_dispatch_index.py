"""Discriminating event dispatch: interest computation and engine routing."""

from repro.core import EngineConfig, ReactiveEngine, eca
from repro.core.actions import PyAction
from repro.events.queries import (
    Discriminator,
    EAggregate,
    EAnd,
    EAtom,
    ECount,
    ENot,
    EOr,
    ESeq,
    EWithin,
    pattern_discriminators,
    query_interest,
)
from repro.terms import Var, d, parse_data, parse_query, q
from repro.terms.ast import Data, Desc, LabelVar, Optional_, Without
from repro.web import Simulation


def one_node(**kwargs):
    sim = Simulation(latency=0.0)
    node = sim.node("http://n.example")
    return sim, node, ReactiveEngine(node, **kwargs)


class TestQueryInterest:
    def test_atom_has_its_label(self):
        assert query_interest(EAtom(q("a", Var("X")))).labels == frozenset({"a"})

    def test_composites_union_member_labels(self):
        query = EWithin(EOr(EAtom(q("a")), EAnd(EAtom(q("b")), EAtom(q("c")))), 5.0)
        assert query_interest(query).labels == frozenset({"a", "b", "c"})

    def test_seq_includes_negation_blocker_labels(self):
        query = EWithin(ESeq(EAtom(q("a")), ENot(q("blocker")), EAtom(q("b"))), 5.0)
        assert query_interest(query).labels == frozenset({"a", "blocker", "b"})

    def test_accumulation_uses_pattern_label(self):
        assert query_interest(ECount(q("halt"), 3, 60.0)).labels == frozenset({"halt"})
        agg = EAggregate(q("tick", Var("P")), "P", "avg", "A", size=5)
        assert query_interest(agg).labels == frozenset({"tick"})

    def test_wildcard_forms_have_no_static_interest(self):
        assert query_interest(EAtom(q(LabelVar("L")))).labels is None
        assert query_interest(EAtom(parse_query("*"))).labels is None
        assert query_interest(EAtom(Var("X"))).labels is None
        assert query_interest(EAtom(Desc(q("a")))).labels is None

    def test_one_wildcard_member_widens_the_composite(self):
        assert query_interest(EAnd(EAtom(q("a")), EAtom(Var("X")))).labels is None


class TestDiscriminators:
    def test_constant_attr_discriminates(self):
        assert pattern_discriminators(q("stock", sym="ACME")) == frozenset(
            {Discriminator("attr", "sym", "ACME")}
        )

    def test_variable_attr_does_not(self):
        assert pattern_discriminators(q("stock", sym=Var("S"))) == frozenset()

    def test_constant_scalar_child_discriminates(self):
        assert pattern_discriminators(
            q("stock", q("sym", "ACME"), q("price", Var("P")))
        ) == frozenset({Discriminator("child", "sym", "ACME")})

    def test_ground_data_child_discriminates(self):
        pattern = q("stock", d("sym", "ACME"))
        assert pattern_discriminators(pattern) == frozenset(
            {Discriminator("child", "sym", "ACME")}
        )

    def test_optional_and_without_children_do_not(self):
        pattern = q(
            "stock",
            Optional_(q("sym", "ACME")),
            Without(q("halted", True)),
        )
        assert pattern_discriminators(pattern) == frozenset()

    def test_union_intersects_shared_labels(self):
        # Both leaves constrain 'stock', but on different constants: no
        # discriminator survives (an event matching either must arrive).
        interest = query_interest(EOr(
            EAtom(q("stock", sym="ACME")), EAtom(q("stock", sym="IBM"))
        ))
        assert interest.labels == frozenset({"stock"})
        assert interest.discriminators("stock") == frozenset()

    def test_union_keeps_disjoint_labels_intact(self):
        interest = query_interest(EWithin(ESeq(
            EAtom(q("order", sym="ACME")), EAtom(q("fill", sym="ACME"))
        ), 5.0))
        assert interest.discriminators("order") == frozenset(
            {Discriminator("attr", "sym", "ACME")}
        )
        assert interest.discriminators("fill") == frozenset(
            {Discriminator("attr", "sym", "ACME")}
        )

    def test_blocker_patterns_contribute_discriminators(self):
        interest = query_interest(EWithin(ESeq(
            EAtom(q("start")), ENot(q("stop", q("sym", "ACME")))
        ), 5.0))
        assert interest.discriminators("stop") == frozenset(
            {Discriminator("child", "sym", "ACME")}
        )


class TestDiscriminatingRouting:
    def _engine_with_symbol_rules(self, **config_kwargs):
        sim, node, engine = one_node(config=EngineConfig(**config_kwargs))
        seen = []
        for sym in ("ACME", "IBM"):
            engine.install(eca(
                f"r-{sym}",
                EAtom(q("stock", q("sym", sym), q("price", Var("P")))),
                PyAction(lambda n, b, s=sym: seen.append(s)),
            ))
        return sim, node, engine, seen

    def test_discriminated_rules_skip_other_values(self):
        sim, node, engine, seen = self._engine_with_symbol_rules()
        node.raise_local(parse_data('stock{ sym["ACME"], price[10] }'))
        sim.run()
        assert seen == ["ACME"]
        # Only the ACME rule was even considered a candidate.
        assert engine.stats.candidates_considered == 1
        assert engine._active["r-IBM"][1]._last_time == float("-inf")

    def test_root_label_ablation_considers_whole_bucket(self):
        sim, node, engine, seen = self._engine_with_symbol_rules(
            discriminating_index=False)
        node.raise_local(parse_data('stock{ sym["ACME"], price[10] }'))
        sim.run()
        assert seen == ["ACME"]
        assert engine.stats.candidates_considered == 2

    def test_event_without_the_axis_reaches_residual_only(self):
        sim, node, engine, seen = self._engine_with_symbol_rules()
        engine.install(eca(
            "r-any",
            EAtom(q("stock", q("price", Var("P")))),
            PyAction(lambda n, b: seen.append("any")),
        ))
        node.raise_local(parse_data('stock{ price[10] }'))
        sim.run()
        assert seen == ["any"]
        assert engine.stats.candidates_considered == 1  # residual only

    def test_ambiguous_event_degrades_to_whole_bucket(self):
        sim, node, engine, seen = self._engine_with_symbol_rules()
        # Two sym children: value extraction is ambiguous, and partial
        # matching means the event satisfies *both* rules — extracting
        # just the first sym child would have lost the ACME firing.
        node.raise_local(parse_data('stock{ sym["IBM"], sym["ACME"], price[10] }'))
        sim.run()
        assert seen == ["ACME", "IBM"]
        assert engine.stats.candidates_considered == 2

    def test_residual_and_discriminated_merge_in_install_order(self):
        sim, node, engine = one_node()
        order = []
        engine.install(eca("first-acme", EAtom(q("stock", q("sym", "ACME"))),
                           PyAction(lambda n, b: order.append("first-acme"))))
        engine.install(eca("plain", EAtom(q("stock")),
                           PyAction(lambda n, b: order.append("plain"))))
        engine.install(eca("last-acme", EAtom(q("stock", q("sym", "ACME"))),
                           PyAction(lambda n, b: order.append("last-acme"))))
        node.raise_local(parse_data('stock{ sym["ACME"] }'))
        sim.run()
        assert order == ["first-acme", "plain", "last-acme"]

    def test_attribute_axis_routing(self):
        sim, node, engine = one_node()
        seen = []
        for sym in ("ACME", "IBM"):
            engine.install(eca(
                f"r-{sym}", EAtom(q("stock", Var("P"), sym=sym)),
                PyAction(lambda n, b, s=sym: seen.append(s)),
            ))
        node.raise_local(Data("stock", (Data("price", (10,)),), False,
                              (("sym", "IBM"),)))
        sim.run()
        assert seen == ["IBM"]
        assert engine.stats.candidates_considered == 1

    def test_all_three_modes_agree_on_firings(self):
        def run(**config_kwargs):
            sim, node, engine, seen = self._engine_with_symbol_rules(**config_kwargs)
            for text in ('stock{ sym["ACME"], price[1] }',
                         'stock{ sym["IBM"], price[2] }',
                         'stock{ price[3] }',
                         'noise{}'):
                node.raise_local(parse_data(text))
            sim.run()
            return seen, engine.stats.rule_firings

        discriminating = run()
        root_only = run(discriminating_index=False)
        broadcast = run(indexed_dispatch=False)
        assert discriminating == root_only == broadcast


class TestIndexedRouting:
    def test_uninterested_evaluators_never_see_events(self):
        sim, node, engine = one_node()
        engine.install(eca("ra", EAtom(q("a")), PyAction(lambda n, b: None)))
        engine.install(eca("rb", EAtom(q("b")), PyAction(lambda n, b: None)))
        for _ in range(5):
            node.raise_local(parse_data("a{}"))
        sim.run()
        # The 'b' evaluator was never fed: its clock never advanced.
        assert engine._active["ra"][1]._last_time >= 0.0
        assert engine._active["rb"][1]._last_time == float("-inf")

    def test_broadcast_ablation_feeds_everyone(self):
        sim, node, engine = one_node(config=EngineConfig(indexed_dispatch=False))
        engine.install(eca("ra", EAtom(q("a")), PyAction(lambda n, b: None)))
        engine.install(eca("rb", EAtom(q("b")), PyAction(lambda n, b: None)))
        node.raise_local(parse_data("a{}"))
        sim.run()
        assert engine._active["rb"][1]._last_time >= 0.0

    def test_wildcard_rules_see_every_label(self):
        sim, node, engine = one_node()
        seen = []
        engine.install(eca(
            "inbox", EAtom(parse_query("*"), alias="E"),
            PyAction(lambda n, b: seen.append(b["E"].label)),
        ))
        for label in ("a", "b", "c"):
            node.raise_local(parse_data(f"{label}{{}}"))
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_label_variable_rules_see_every_label(self):
        sim, node, engine = one_node()
        seen = []
        engine.install(eca(
            "any", EAtom(q(LabelVar("L"))),
            PyAction(lambda n, b: seen.append(b["L"])),
        ))
        for label in ("x", "y"):
            node.raise_local(parse_data(f"{label}{{}}"))
        sim.run()
        assert seen == ["x", "y"]

    def test_wildcard_and_label_rules_fire_in_install_order(self):
        sim, node, engine = one_node()
        order = []
        engine.install(eca("first-a", EAtom(q("a")),
                           PyAction(lambda n, b: order.append("first-a"))))
        engine.install(eca("wild", EAtom(parse_query("*")),
                           PyAction(lambda n, b: order.append("wild"))))
        engine.install(eca("last-a", EAtom(q("a")),
                           PyAction(lambda n, b: order.append("last-a"))))
        node.raise_local(parse_data("a{}"))
        sim.run()
        assert order == ["first-a", "wild", "last-a"]

    def test_indexed_and_broadcast_agree_on_firings(self):
        def run(indexed: bool) -> tuple[int, list[str]]:
            sim, node, engine = one_node(
                config=EngineConfig(indexed_dispatch=indexed))
            fired = []
            engine.install(eca("pair", EWithin(
                EAnd(EAtom(q("a", q("x", Var("X")))), EAtom(q("b", q("x", Var("X"))))), 10.0),
                PyAction(lambda n, b: fired.append(f"pair:{b['X']}"))))
            engine.install(eca("count", ECount(q("c"), 2, 10.0),
                               PyAction(lambda n, b: fired.append("count"))))
            engine.install(eca("any", EAtom(q(LabelVar("L"))),
                               PyAction(lambda n, b: fired.append(str(b["L"])))))
            for text in ("a{x[1]}", "c{}", "b{x[1]}", "noise{}", "c{}"):
                node.raise_local(parse_data(text))
            sim.run()
            return engine.stats.rule_firings, fired

        indexed_firings, indexed_seq = run(indexed=True)
        broadcast_firings, broadcast_seq = run(indexed=False)
        assert indexed_firings == broadcast_firings > 0
        assert indexed_seq == broadcast_seq


class TestRefreshAndDeadlines:
    def test_refresh_preserves_partial_state_across_install(self):
        sim, node, engine = one_node()
        hits = []
        engine.install(eca("pair", EWithin(
            EAnd(EAtom(q("a", q("x", Var("X")))), EAtom(q("b", q("x", Var("X"))))), 10.0),
            PyAction(lambda n, b: hits.append(b["X"]))))
        node.raise_local(parse_data("a{x[7]}"))
        sim.run()  # a{x[7]} is a processed partial match before the rebuild
        # Installing (and uninstalling) other rules rebuilds the index but
        # must keep the half-completed pair match alive.
        engine.install(eca("other", EAtom(q("z")), PyAction(lambda n, b: None)))
        engine.uninstall("other")
        node.raise_local(parse_data("b{x[7]}"))
        sim.run()
        assert hits == [7]

    def test_absence_fires_via_wakeup_despite_indexing(self):
        # No further event carries the rule's labels, so only the scheduled
        # wake-up can confirm the absence — exactly the indexed-dispatch
        # risk case (the unrelated traffic never reaches the evaluator).
        sim, node, engine = one_node()
        hits = []
        engine.install(eca("quiet", EWithin(
            ESeq(EAtom(q("start", q("x", Var("X")))), ENot(q("stop"))), 2.0),
            PyAction(lambda n, b: hits.append(b["X"]))))
        node.raise_local(parse_data("start{x[1]}"))
        for at in (0.5, 1.0, 3.0):
            sim.scheduler.at(at, lambda: node.raise_local(parse_data("noise{}")))
        sim.run()
        assert hits == [1]

    def test_firing_first_truncates_deadline_batch(self):
        # Two pending absences confirm at the same wake-up; firing="first"
        # must fire the rule once, not twice (_on_time truncation).
        sim, node, engine = one_node()
        hits = []
        engine.install(eca("quiet", EWithin(
            ESeq(EAtom(q("start", q("x", Var("X")))), ENot(q("stop"))), 2.0),
            PyAction(lambda n, b: hits.append(b["X"])), firing="first"))
        node.raise_local(parse_data("start{x[1]}"))
        node.raise_local(parse_data("start{x[2]}"))
        sim.run()
        assert len(hits) == 1

    def test_firing_all_fires_whole_deadline_batch(self):
        sim, node, engine = one_node()
        hits = []
        engine.install(eca("quiet", EWithin(
            ESeq(EAtom(q("start", q("x", Var("X")))), ENot(q("stop"))), 2.0),
            PyAction(lambda n, b: hits.append(b["X"]))))
        node.raise_local(parse_data("start{x[1]}"))
        node.raise_local(parse_data("start{x[2]}"))
        sim.run()
        assert sorted(hits) == [1, 2]
